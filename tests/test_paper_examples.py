"""Reproductions of the paper's worked examples (Sections II–IV).

The paper's Figure 3 path set is not printed in full, so Example 1/2 are
reproduced *semantically* on a constructed dataset exhibiting the same
structure: one dominant long subpath whose fragments crowd a gross-frequency
ranking, plus complementary short patterns.  The assertions check exactly the
claims the examples make:

* GFS's capacity-bound table is mostly overlapping fragments (Table I left);
* OFFS's table keeps the winner plus complementary entries (Table I right);
* compression with the OFFS table beats the GFS table on the same data;
* the notation example of Section II-A holds verbatim.
"""

import pytest

from repro.baselines.gfs import GFSCodec
from repro.core.builder import TableBuilder
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.analysis.metrics import measure_codec
from repro.paths.dataset import PathDataset


@pytest.fixture()
def figure3_like_dataset() -> PathDataset:
    """A path set with Example 1's structure.

    ``hot = (2,3,5,8,12)`` plays the role of ``{v2,v3,v5,v8,v12}``; the pairs
    ``(13,21)`` and ``(17,9)`` recur as the complementary patterns of
    Table I's right-hand side.
    """
    hot = (2, 3, 5, 8, 12)
    return PathDataset(
        [
            (13, 21) + hot,
            (17, 9) + hot,
            hot + (13, 21),
            (17, 9) + hot[:4],        # truncated occurrence: fragments exist
            (13, 21, 17, 9, 30),
            (31,) + hot + (32,),
            (13, 21) + hot[:3] + (33,),
            (17, 9, 13, 21, 34),
        ],
        name="figure3",
    )


class TestNotation:
    def test_section2_slicing_example(self):
        # "given a path P = {1,2,3,5,8,13}, P[1:4] = {2,3,5} and P[4] = {8}"
        P = (1, 2, 3, 5, 8, 13)
        assert P[1:4] == (2, 3, 5)
        assert P[4] == 8


class TestExample1MatchCollision:
    CAPACITY = 5  # "the capacity of the lookup table is 5"

    def test_gfs_table_is_dominated_by_overlapping_fragments(self, figure3_like_dataset):
        codec = GFSCodec(capacity=self.CAPACITY, max_len=5, sample_exponent=0)
        codec.fit(figure3_like_dataset)
        hot = (2, 3, 5, 8, 12)
        fragments = [
            sp for sp in codec.table.subpaths
            if any(hot[i : i + len(sp)] == sp for i in range(len(hot)))
        ]
        # Table I (left): at least 4 of the 5 entries are the hot subpath or
        # fragments of it, colliding with each other.
        assert len(fragments) >= 4

    def test_offs_table_keeps_complementary_entries(self, figure3_like_dataset):
        cfg = OFFSConfig(iterations=3, sample_exponent=0, delta=5, alpha=3,
                         capacity=self.CAPACITY)
        codec = OFFSCodec(cfg).fit(figure3_like_dataset)
        subpaths = set(codec.table.subpaths)
        assert (2, 3, 5, 8, 12) in subpaths          # u0*: the winner survives
        assert (13, 21) in subpaths                  # u1*: complementary pair
        assert (17, 9) in subpaths                   # u2*: complementary pair

    def test_offs_compresses_better_than_gfs_under_same_capacity(self, figure3_like_dataset):
        cfg = OFFSConfig(iterations=3, sample_exponent=0, delta=5, alpha=3,
                         capacity=self.CAPACITY)
        offs = measure_codec(OFFSCodec(cfg), figure3_like_dataset)
        gfs = measure_codec(
            GFSCodec(capacity=self.CAPACITY, max_len=5, sample_exponent=0),
            figure3_like_dataset,
        )
        assert offs.compression_ratio > gfs.compression_ratio


class TestExample2TableEvolution:
    LAMBDA = 8  # Example 2 keeps "the top 5" each iteration; a small λ is
    # the part that matters — it evicts the one-off merge candidates that
    # would otherwise misalign the next iteration's matching.

    def test_iteration_one_counts_pairs_then_merges_to_hot(self, figure3_like_dataset):
        """Follow Table II's stages: pairs first, the 5-sequence later."""
        cfg = OFFSConfig(iterations=3, sample_exponent=0, delta=5, alpha=3,
                         capacity=self.LAMBDA)
        builder = TableBuilder(cfg)
        paths = list(figure3_like_dataset)
        cands = builder.initialize(paths)
        # Initialization: all edges at existence weight 1.
        assert all(w == 1 for _, w in cands.items())
        assert all(len(seq) == 2 for seq, _ in cands.items())

        builder.run_iteration(cands, paths, 1, self.LAMBDA)
        # After iteration 1 the matched pairs carry real counts.
        assert cands.weight((13, 21)) >= 3

        builder.run_iteration(cands, paths, 2, self.LAMBDA)
        builder.run_iteration(cands, paths, 3, self.LAMBDA)
        # The full hot sequence has emerged and earns practical counts,
        # alongside the complementary pairs — Table II's final stage.
        assert cands.weight((2, 3, 5, 8, 12)) >= 2
        assert cands.weight((13, 21)) >= 2
        assert cands.weight((17, 9)) >= 2

    def test_finalization_drops_weight_one(self, figure3_like_dataset):
        cfg = OFFSConfig(iterations=3, sample_exponent=0, delta=5, alpha=3,
                         capacity=self.LAMBDA)
        builder = TableBuilder(cfg)
        paths = list(figure3_like_dataset)
        cands = builder.initialize(paths)
        for it in (1, 2, 3):
            builder.run_iteration(cands, paths, it, self.LAMBDA)
        table, _ = builder.finalize(cands, base_id=1_000)
        weights = dict(cands.items())
        assert len(table) >= 1
        for subpath in table.subpaths:
            assert weights[subpath] >= 2


class TestExample3And4ProbeCosts:
    """Examples 3 and 4 count hashed vertices for a failed length-8 probe.

    The arithmetic (35 for the flat scheme, <= 14 for the two-level one) is
    about hash cost, not results; here we verify the *structural* claim that
    both schemes return the same worst-case answer on Example 3's path.
    """

    def test_worst_case_no_match_returns_single_vertex(self):
        from repro.core.matcher import HashCandidates
        from repro.core.multilevel import MultiLevelCandidates

        path = (8, 5, 0, 9, 1, 3, 4, 2)  # Example 3's P
        flat, two_level = HashCandidates(), MultiLevelCandidates(alpha=5)
        for backend in (flat, two_level):
            backend.add((90, 91))  # something unrelated so the sets are non-empty
            assert backend.longest_match(path, 0, 8) == 1

    def test_lemma3_bound_below_flat_bound(self):
        from repro.core.multilevel import MultiLevelCandidates

        delta = 8
        flat_bound = delta * delta
        assert MultiLevelCandidates(alpha=5).probe_cost_bound(delta) < flat_bound
