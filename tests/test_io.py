"""Unit tests for dataset persistence (text and binary formats)."""

import pytest

from repro.paths.dataset import PathDataset
from repro.paths.io import (
    dumps_binary,
    load_binary,
    load_text,
    loads_binary,
    save_binary,
    save_text,
)


@pytest.fixture()
def ds():
    return PathDataset([[1, 2, 3], [400000, 5], [7]], name="io")


class TestText:
    def test_roundtrip(self, ds, tmp_path):
        target = tmp_path / "paths.txt"
        save_text(ds, target)
        assert load_text(target) == ds

    def test_format_is_one_path_per_line(self, ds, tmp_path):
        target = tmp_path / "paths.txt"
        save_text(ds, target)
        lines = target.read_text().splitlines()
        assert lines[0] == "1 2 3"
        assert lines[1] == "400000 5"

    def test_blank_lines_skipped(self, tmp_path):
        target = tmp_path / "paths.txt"
        target.write_text("1 2\n\n3 4\n")
        assert list(load_text(target)) == [(1, 2), (3, 4)]

    def test_malformed_line_reports_position(self, tmp_path):
        target = tmp_path / "paths.txt"
        target.write_text("1 2\n3 x\n")
        with pytest.raises(ValueError, match="paths.txt:2"):
            load_text(target)

    def test_empty_file(self, tmp_path):
        target = tmp_path / "paths.txt"
        target.write_text("")
        assert len(load_text(target)) == 0


class TestBinary:
    def test_roundtrip_in_memory(self, ds):
        assert loads_binary(dumps_binary(ds)) == ds

    def test_roundtrip_on_disk(self, ds, tmp_path):
        target = tmp_path / "paths.bin"
        save_binary(ds, target)
        assert load_binary(target) == ds

    def test_empty_dataset(self):
        empty = PathDataset([])
        assert loads_binary(dumps_binary(empty)) == empty

    def test_bad_magic_rejected(self, ds):
        blob = dumps_binary(ds)
        with pytest.raises(ValueError, match="magic"):
            loads_binary(b"XXXX" + blob[4:])

    def test_truncated_blob_rejected(self, ds):
        blob = dumps_binary(ds)
        with pytest.raises(ValueError):
            loads_binary(blob[:-2])

    def test_trailing_garbage_rejected(self, ds):
        blob = dumps_binary(ds)
        with pytest.raises(ValueError, match="trailing"):
            loads_binary(blob + b"\x05")

    def test_large_ids_roundtrip(self):
        ds = PathDataset([[2**40, 2**20, 0]])
        assert loads_binary(dumps_binary(ds)) == ds
