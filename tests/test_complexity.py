"""Empirical verification of the paper's complexity lemmas (§III, §V).

Wall-clock scaling tests are flaky; these use the matchers' operation
counters (see :mod:`repro.core.probestats`) and symbol counts, which are
deterministic:

* **Lemma 1** — decompression is one pass: output work equals decompressed
  length exactly (measured as expansion operations).
* **Lemma 2** — compression probe work is ``O(|P| · δ²)``: per input
  vertex, the hashed-vertex count is bounded by ``δ(δ+1)/2`` and grows
  when δ grows.
* **§V table construction** — per-iteration probe work is linear in the
  sampled node count: doubling the sample roughly doubles the counted
  work (factor within [1.5, 3]).
"""

import pytest

from repro.core.builder import TableBuilder
from repro.core.compressor import compress_path, decompress_path
from repro.core.config import OFFSConfig
from repro.core.matcher import HashCandidates
from repro.core.offs import OFFSCodec
from repro.workloads.registry import make_dataset


@pytest.fixture(scope="module")
def fitted():
    dataset = make_dataset("alibaba", "tiny")
    codec = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=0)).fit(dataset)
    return dataset, codec


class TestLemma1Decompression:
    def test_output_work_equals_path_length(self, fitted):
        dataset, codec = fitted
        table = codec.table
        for path in list(dataset)[:50]:
            token = codec.compress_path(path)
            restored = decompress_path(token, table)
            # O(|P|): the only work is emitting |P| vertices.
            assert len(restored) == len(path)

    def test_decompression_work_independent_of_archive_size(self, fitted):
        # Decompressing one path costs the same whether the archive holds
        # 10 or 10,000 others — it touches only its own token.
        dataset, codec = fitted
        token = codec.compress_path(dataset[0])
        a = decompress_path(token, codec.table)
        b = decompress_path(token, codec.table)
        assert a == b  # pure function of (token, table)


class TestLemma2CompressionBound:
    def _probe_work_per_vertex(self, dataset, delta: int) -> float:
        config = OFFSConfig(
            iterations=4, sample_exponent=0, delta=delta,
            alpha=min(5, delta - 1),
        )
        codec = OFFSCodec(config).fit(dataset)
        matcher = HashCandidates()
        for _, subpath in codec.table:
            matcher.add(subpath, 0)
        total_vertices = 0
        for path in dataset:
            compress_path(path, codec.table, matcher)
            total_vertices += len(path)
        return matcher.stats.hashed_vertices / total_vertices

    def test_per_vertex_work_bounded_by_delta_squared(self, fitted):
        dataset, _ = fitted
        for delta in (4, 8):
            per_vertex = self._probe_work_per_vertex(dataset, delta)
            # Lemma 2's worst case: delta probes of up to delta vertices,
            # i.e. delta*(delta+1)/2 hashed vertices per position.
            assert per_vertex <= delta * (delta + 1) / 2

    def test_work_grows_with_delta(self, fitted):
        dataset, _ = fitted
        assert self._probe_work_per_vertex(dataset, 8) > \
            self._probe_work_per_vertex(dataset, 4)


class TestConstructionLinearity:
    def test_iteration_work_scales_linearly_with_sample(self):
        dataset = make_dataset("alibaba", "tiny")
        config = OFFSConfig(iterations=1, sample_exponent=0)
        builder = TableBuilder(config)

        def iteration_work(paths):
            cands = builder.initialize(paths)
            builder.run_iteration(cands, paths, 1, 10_000)
            return cands.stats.hashed_vertices

        half = list(dataset)[: len(dataset) // 2]
        full = list(dataset)
        work_half = iteration_work(half)
        work_full = iteration_work(full)
        ratio = work_full / work_half
        assert 1.5 < ratio < 3.0, f"expected ~2x work for 2x data, got {ratio:.2f}"

    def test_sampling_divides_construction_work(self):
        dataset = make_dataset("alibaba", "tiny")

        def build_work(k):
            config = OFFSConfig(iterations=2, sample_exponent=k)
            builder = TableBuilder(config)
            paths = list(dataset)[:: 1 << k]
            cands = builder.initialize(paths)
            for it in (1, 2):
                builder.run_iteration(cands, paths, it, 10_000)
            return cands.stats.hashed_vertices

        assert build_work(2) < build_work(0) / 2


class TestCompressionNeverExpands:
    def test_symbol_count_monotonicity(self, fitted):
        dataset, codec = fitted
        for path in dataset:
            assert len(codec.compress_path(path)) <= len(path)

    def test_worst_case_ratio_bound(self, fitted):
        """§V: 'the worst ratio of input size to output size' is bounded —
        a compressed stream never carries more symbols than its input."""
        dataset, codec = fitted
        total_in = sum(len(p) for p in dataset)
        total_out = sum(len(codec.compress_path(p)) for p in dataset)
        assert total_out <= total_in
