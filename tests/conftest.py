"""Shared fixtures for the test suite.

Datasets are deliberately tiny — correctness tests should not wait on
workload generation — and cached per session.  Anything timing-related lives
in ``benchmarks/``, not here.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.paths.dataset import PathDataset
from repro.workloads.registry import make_dataset


def open_fd_count() -> int:
    """The number of open file descriptors in this process, or ``-1`` when
    the platform exposes no fd table (neither /proc/self/fd nor /dev/fd).

    The runtime twin of lint rule R008: the serve/sharded suites snapshot
    this before and after each module to prove mmaps, sockets and store
    files are all released.
    """
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            return len(os.listdir(fd_dir))
        except OSError:
            continue
    return -1


def make_fd_leak_guard(slack: int = 1):
    """A module-scoped autouse fixture asserting no descriptor leaks.

    *slack* absorbs interpreter-internal descriptors that legitimately
    appear once per process (e.g. the multiprocessing resource tracker's
    pipe on first use — we pre-start it, but a platform without fork still
    lazily opens urandom-style fds).
    """

    @pytest.fixture(scope="module", autouse=True)
    def _fd_leak_guard():
        try:  # pre-start the one-pipe-per-process tracker so it is not
            from multiprocessing import resource_tracker  # counted as a leak

            resource_tracker.ensure_running()
        except (ImportError, OSError):  # pragma: no cover - non-POSIX
            pass
        gc.collect()
        before = open_fd_count()
        yield
        gc.collect()
        after = open_fd_count()
        if before < 0 or after < 0:
            pytest.skip("platform exposes no fd table")
        assert after <= before + slack, (
            f"descriptor leak: {before} open fds before this module, "
            f"{after} after (slack={slack})"
        )

    return _fd_leak_guard


@pytest.fixture()
def simple_dataset() -> PathDataset:
    """A small hand-written dataset with an obvious hot subpath.

    Paths repeat (as real transaction logs do): OFFS only keeps candidates
    whose *practical* frequency is at least 2, so a dataset of entirely
    unique paths legitimately yields an empty table.
    """
    hot = [10, 11, 12, 13]
    return PathDataset(
        [
            [1, *hot, 2],
            [1, *hot, 2],
            [1, *hot, 2],
            [3, *hot, 4],
            [3, *hot, 4],
            [5, *hot, 6],
            [1, *hot, 6],
            [7, 8, 9],
            [7, 8, 9],
            [2, 7, 8, 9],
        ],
        name="simple",
    )


@pytest.fixture()
def repeated_path_dataset() -> PathDataset:
    """Many copies of one path — the fully compressible extreme."""
    return PathDataset([[1, 2, 3, 4, 5, 6]] * 10, name="repeat")


@pytest.fixture(scope="session")
def tiny_alibaba() -> PathDataset:
    """The alibaba surrogate at test scale (cached for the whole session)."""
    return make_dataset("alibaba", "tiny")


@pytest.fixture(scope="session")
def tiny_sanfrancisco() -> PathDataset:
    """The sanfrancisco surrogate at test scale."""
    return make_dataset("sanfrancisco", "tiny")


@pytest.fixture()
def exhaustive_config() -> OFFSConfig:
    """OFFS config for tiny data: no sampling, ample iterations."""
    return OFFSConfig(iterations=4, sample_exponent=0)


@pytest.fixture()
def fitted_codec(tiny_alibaba, exhaustive_config) -> OFFSCodec:
    """An OFFS codec already fitted on the tiny alibaba surrogate."""
    return OFFSCodec(exhaustive_config).fit(tiny_alibaba)
