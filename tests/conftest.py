"""Shared fixtures for the test suite.

Datasets are deliberately tiny — correctness tests should not wait on
workload generation — and cached per session.  Anything timing-related lives
in ``benchmarks/``, not here.
"""

from __future__ import annotations

import pytest

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.paths.dataset import PathDataset
from repro.workloads.registry import make_dataset


@pytest.fixture()
def simple_dataset() -> PathDataset:
    """A small hand-written dataset with an obvious hot subpath.

    Paths repeat (as real transaction logs do): OFFS only keeps candidates
    whose *practical* frequency is at least 2, so a dataset of entirely
    unique paths legitimately yields an empty table.
    """
    hot = [10, 11, 12, 13]
    return PathDataset(
        [
            [1, *hot, 2],
            [1, *hot, 2],
            [1, *hot, 2],
            [3, *hot, 4],
            [3, *hot, 4],
            [5, *hot, 6],
            [1, *hot, 6],
            [7, 8, 9],
            [7, 8, 9],
            [2, 7, 8, 9],
        ],
        name="simple",
    )


@pytest.fixture()
def repeated_path_dataset() -> PathDataset:
    """Many copies of one path — the fully compressible extreme."""
    return PathDataset([[1, 2, 3, 4, 5, 6]] * 10, name="repeat")


@pytest.fixture(scope="session")
def tiny_alibaba() -> PathDataset:
    """The alibaba surrogate at test scale (cached for the whole session)."""
    return make_dataset("alibaba", "tiny")


@pytest.fixture(scope="session")
def tiny_sanfrancisco() -> PathDataset:
    """The sanfrancisco surrogate at test scale."""
    return make_dataset("sanfrancisco", "tiny")


@pytest.fixture()
def exhaustive_config() -> OFFSConfig:
    """OFFS config for tiny data: no sampling, ample iterations."""
    return OFFSConfig(iterations=4, sample_exponent=0)


@pytest.fixture()
def fitted_codec(tiny_alibaba, exhaustive_config) -> OFFSCodec:
    """An OFFS codec already fitted on the tiny alibaba surrogate."""
    return OFFSCodec(exhaustive_config).fit(tiny_alibaba)
