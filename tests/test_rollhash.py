"""Tests for the rolling-hash backend and its vectorized batch kernel.

The contract under test: ``RollingHashCandidates`` returns match lengths
identical to the baseline ``HashCandidates`` for any contents (including
under forced hash collisions), and ``FlatBatchKernel`` nominations drive
``compress_paths_flat`` to output byte-identical to the per-path loop.
"""

import random

import pytest

from repro.core.builder import TableBuilder
from repro.core.compressor import compress_dataset, compress_paths_flat
from repro.core.config import OFFSConfig
from repro.core.flatcorpus import FlatCorpus
from repro.core.matcher import HashCandidates, make_candidate_set, static_matcher_from_table
from repro.core.rollhash import FlatBatchKernel, RollingHashCandidates, _hash_sequence
from repro.core.supernode_table import SupernodeTable


def _random_corpus(rng, n_paths=120, alphabet=12, max_len=15):
    return [
        tuple(rng.randrange(alphabet) for _ in range(rng.randrange(max_len)))
        for _ in range(n_paths)
    ]


class TestDynamicBackend:
    def test_factory_registration(self):
        assert isinstance(make_candidate_set("rolling"), RollingHashCandidates)

    def test_bad_hash_bits(self):
        with pytest.raises(ValueError):
            RollingHashCandidates(hash_bits=0)
        with pytest.raises(ValueError):
            RollingHashCandidates(hash_bits=65)

    @pytest.mark.parametrize("hash_bits", [64, 8, 2, 1])
    def test_matches_baseline_on_random_contents(self, hash_bits):
        rng = random.Random(hash_bits)
        baseline = HashCandidates()
        rolling = RollingHashCandidates(hash_bits=hash_bits)
        for _ in range(60):
            seq = tuple(rng.randrange(8) for _ in range(rng.randrange(2, 7)))
            baseline.add(seq, 1)
            rolling.add(seq, 1)
        for path in _random_corpus(rng, n_paths=80, alphabet=8):
            for pos in range(len(path)):
                for cap in (2, 4, 8):
                    assert rolling.longest_match(path, pos, cap) == \
                        baseline.longest_match(path, pos, cap), (path, pos, cap)

    def test_discard_updates_buckets(self):
        rolling = RollingHashCandidates()
        rolling.add((1, 2, 3))
        rolling.add((1, 2))
        assert rolling.longest_match((1, 2, 3), 0, 8) == 3
        rolling.discard((1, 2, 3))
        assert rolling.longest_match((1, 2, 3), 0, 8) == 2
        rolling.discard((1, 2))
        assert rolling.longest_match((1, 2, 3), 0, 8) == 1
        assert len(rolling) == 0

    def test_shared_hash_distinct_candidates_survive_discard(self):
        # With hash_bits=1 every candidate shares one of two buckets;
        # discarding one must not evict the others (refcounted buckets).
        rolling = RollingHashCandidates(hash_bits=1)
        seqs = [(1, 2), (2, 3), (3, 4), (4, 5)]
        for s in seqs:
            rolling.add(s)
        rolling.discard(seqs[0])
        for s in seqs[1:]:
            assert rolling.longest_match(s, 0, 8) == 2

    def test_probe_stats_move(self):
        rolling = RollingHashCandidates()
        rolling.add((1, 2, 3))
        rolling.longest_match((1, 2, 3, 4), 0, 8)
        assert rolling.stats.probes >= 1
        assert rolling.stats.hashed_vertices >= 1

    def test_builder_with_rolling_matcher_builds_same_table(self):
        from repro.workloads.registry import make_dataset

        ds = make_dataset("alibaba", "tiny", seed=3)
        cfg = OFFSConfig(iterations=2, sample_exponent=1)
        hash_table, _ = TableBuilder(cfg).build(ds)
        roll_table, _ = TableBuilder(cfg.with_(matcher="rolling")).build(ds)
        assert roll_table == hash_table


class TestHashSequence:
    def test_masking(self):
        full = _hash_sequence((1, 2, 3), (1 << 64) - 1)
        low = _hash_sequence((1, 2, 3), (1 << 8) - 1)
        assert low == full & 0xFF

    def test_content_function(self):
        mask = (1 << 64) - 1
        assert _hash_sequence((1, 2), mask) == _hash_sequence((1, 2), mask)
        assert _hash_sequence((1, 2), mask) != _hash_sequence((2, 1), mask)


class TestFlatBatchKernel:
    @pytest.fixture()
    def table(self):
        return SupernodeTable(100, [(1, 2, 3), (1, 2), (4, 5), (2, 3, 4, 5)])

    def test_kernel_nominations_superset_of_matches(self, table):
        kernel = FlatBatchKernel(table)
        if not kernel.available:
            pytest.skip("numpy unavailable")
        paths = [(1, 2, 3, 4, 5), (4, 5, 1, 2), (9, 9)]
        corpus = FlatCorpus.from_paths(paths)
        best = kernel.best_lengths(corpus)
        offsets = corpus.offsets
        inverted = table.inverted()
        for i, path in enumerate(paths):
            for pos in range(len(path)):
                nominated = best[offsets[i] + pos]
                # A true candidate at (pos, L) always hash-hits, so the
                # nomination is an upper bound on the longest real match.
                longest_real = 1
                for length in range(2, len(path) - pos + 1):
                    if path[pos : pos + length] in inverted:
                        longest_real = length
                assert nominated >= longest_real

    def test_batch_probes_counted(self, table):
        kernel = FlatBatchKernel(table)
        if not kernel.available:
            pytest.skip("numpy unavailable")
        kernel.best_lengths(FlatCorpus.from_paths([(1, 2, 3, 4, 5)]))
        assert kernel.batch_probes > 0

    def test_empty_corpus(self, table):
        kernel = FlatBatchKernel(table)
        if not kernel.available:
            pytest.skip("numpy unavailable")
        assert kernel.best_lengths(FlatCorpus.from_paths([])) == []

    def test_empty_table(self):
        kernel = FlatBatchKernel(SupernodeTable(100))
        if not kernel.available:
            pytest.skip("numpy unavailable")
        best = kernel.best_lengths(FlatCorpus.from_paths([(1, 2, 3)]))
        assert best == [1, 1, 1]


class TestBatchEquivalence:
    """compress_paths_flat(rolling) must be byte-identical to the loop."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_tables_and_corpora(self, seed):
        rng = random.Random(seed)
        paths = _random_corpus(rng)
        subpaths = set()
        for _ in range(40):
            sp = tuple(rng.randrange(12) for _ in range(rng.randrange(2, 8)))
            subpaths.add(sp)
        table = SupernodeTable(1000, sorted(subpaths))
        expected = compress_dataset(paths, table)
        matcher = static_matcher_from_table(table, "rolling")
        assert compress_paths_flat(paths, table, matcher) == expected

    @pytest.mark.parametrize("hash_bits", [8, 2, 1])
    def test_adversarial_collisions(self, hash_bits):
        # Tiny hash widths make nearly every window a false-positive
        # nomination; the verify/descend loop must still land on exactly
        # the greedy per-path answer.
        rng = random.Random(hash_bits)
        paths = _random_corpus(rng, n_paths=60, alphabet=6, max_len=12)
        table = SupernodeTable(
            1000,
            sorted({
                tuple(rng.randrange(6) for _ in range(rng.randrange(2, 6)))
                for _ in range(30)
            }),
        )
        matcher = RollingHashCandidates(hash_bits=hash_bits)
        for _, sp in table:
            matcher.add(sp, 0)
        assert compress_paths_flat(paths, table, matcher) == compress_dataset(paths, table)

    def test_workload_scale(self):
        from repro.workloads.registry import make_dataset

        ds = make_dataset("alibaba", "tiny", seed=11)
        table, _ = TableBuilder(OFFSConfig(iterations=3, sample_exponent=1)).build(ds)
        expected = compress_dataset(list(ds), table)
        matcher = static_matcher_from_table(table, "rolling")
        assert compress_paths_flat(ds.to_flat(), table, matcher) == expected
