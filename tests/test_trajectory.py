"""Unit tests for GPS trajectory recording and grid snapping."""

import random

import pytest

from repro.graphs.road import RoadNetwork
from repro.graphs.trajectory import TrajectoryRecorder, snap_to_grid
from repro.paths.preprocess import preprocess_paths


class TestSnapToGrid:
    def test_cell_centres_snap_to_their_cell(self):
        # Centre of (row=2, col=3) with width 10 -> id 23.
        assert snap_to_grid([(3.5, 2.5)], 1.0, 10) == [23]

    def test_clamps_to_grid(self):
        assert snap_to_grid([(-1.0, 0.5)], 1.0, 10) == [0]
        assert snap_to_grid([(99.0, 0.5)], 1.0, 10) == [9]

    def test_cell_size_scales(self):
        assert snap_to_grid([(10.0, 20.0)], 10.0, 100) == [2 * 100 + 1]

    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            snap_to_grid([(0, 0)], 0.0, 10)


class TestRecorder:
    @pytest.fixture()
    def net(self):
        return RoadNetwork(width=10, height=10, hotspots=5, seed=1)

    def test_noiseless_recording_snaps_back_to_route(self, net):
        recorder = TrajectoryRecorder(net, fixes_per_cell=(1, 1), jitter=0.0,
                                      backtrack_probability=0.0)
        route = net.route((0, 0), (4, 4))
        points = recorder.record(route, random.Random(0))
        assert snap_to_grid(points, 1.0, net.width) == list(route)

    def test_multiple_fixes_create_adjacent_duplicates(self, net):
        recorder = TrajectoryRecorder(net, fixes_per_cell=(2, 3), jitter=0.0,
                                      backtrack_probability=0.0)
        route = net.route((0, 0), (2, 2))
        snapped = snap_to_grid(recorder.record(route, random.Random(0)), 1.0, net.width)
        assert len(snapped) > len(route)  # duplicates present
        deduped = [v for i, v in enumerate(snapped) if i == 0 or snapped[i - 1] != v]
        assert deduped == list(route)

    def test_backtracking_creates_loops(self, net):
        recorder = TrajectoryRecorder(net, fixes_per_cell=(1, 1), jitter=0.0,
                                      backtrack_probability=1.0)
        route = net.route((0, 0), (0, 5))
        snapped = snap_to_grid(recorder.record(route, random.Random(0)), 1.0, net.width)
        assert len(set(snapped)) < len(snapped)  # some vertex recurs

    def test_record_dataset_feeds_preprocessing(self, net):
        recorder = TrajectoryRecorder(net)
        walks = recorder.record_dataset(20, seed=3)
        assert len(walks) == 20
        ds, report = preprocess_paths(walks, name="gps")
        assert len(ds) > 0
        for path in ds:
            assert len(set(path)) == len(path) and len(path) >= 3

    def test_validation(self, net):
        with pytest.raises(ValueError):
            TrajectoryRecorder(net, fixes_per_cell=(0, 1))
        with pytest.raises(ValueError):
            TrajectoryRecorder(net, jitter=-0.1)
        with pytest.raises(ValueError):
            TrajectoryRecorder(net, backtrack_probability=1.5)
