"""Unit tests for the zdict-style dictionary trainer."""

from repro.generic.dictionary import train_dictionary, train_dictionary_from_paths
from repro.generic.lz77 import lz77_compress, lz77_decompress


class TestTrainer:
    def test_empty_samples_give_empty_dictionary(self):
        assert train_dictionary([]) == b""

    def test_no_repetition_gives_empty_dictionary(self):
        samples = [bytes(range(i, i + 32)) for i in range(0, 128, 32)]
        assert train_dictionary(samples) == b""

    def test_recurring_segment_lands_in_dictionary(self):
        hot = b"THE-HOT-SEGMENT!"  # 16 bytes = the trainer's segment size
        samples = [b"xx" + hot + bytes([i]) for i in range(20)]
        trained = train_dictionary(samples)
        # The sampling stride may shift the window a few bytes, but the bulk
        # of the hot segment must be in the dictionary.
        assert hot[:12] in trained

    def test_budget_respected(self):
        samples = [bytes([i % 7]) * 64 for i in range(50)]
        assert len(train_dictionary(samples, dict_size=64)) <= 64

    def test_tiny_budget_gives_empty(self):
        assert train_dictionary([b"abcd" * 20], dict_size=4) == b""

    def test_deterministic(self):
        samples = [b"abcdefghijklmnop" * 3, b"qrstuvwxyz012345" * 3]
        assert train_dictionary(samples) == train_dictionary(samples)

    def test_dictionary_improves_compression_of_similar_data(self):
        samples = [b"GET /api/v1/users/%d HTTP/1.1" % i for i in range(64)]
        trained = train_dictionary(samples, dict_size=512)
        fresh = b"GET /api/v1/users/999 HTTP/1.1"
        with_dict = lz77_compress(fresh, trained)
        without = lz77_compress(fresh)
        assert lz77_decompress(with_dict, trained) == fresh
        assert len(with_dict) < len(without)


class TestPathTrainer:
    def test_blocks_of_1kb(self):
        # 4 KiB of samples -> blocked internally; just verify it trains.
        paths = [bytes(range(64)) * 4 for _ in range(16)]
        trained = train_dictionary_from_paths(paths, dict_size=1024)
        assert isinstance(trained, bytes)
        assert len(trained) <= 1024

    def test_empty_paths(self):
        assert train_dictionary_from_paths([]) == b""
