"""Fixture tests for the cross-module analyzer: ProjectGraph + R007-R010.

Same pattern as test_lint_rules.py: each rule gets miniature projects with
seeded violations (positive) and protocol-correct twins (negative), built
under ``tmp_path`` with the real checkout's shape.
"""

from pathlib import Path

import pytest

from repro.lint import Project, run_rules
from repro.lint.rules.fork_safety import ForkSafetyRule
from repro.lint.rules.format_symmetry import FormatSymmetryRule
from repro.lint.rules.resource_lifecycle import ResourceLifecycleRule
from repro.lint.rules.thread_discipline import ThreadDisciplineRule

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files):
    for relpath, text in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return Project(tmp_path)


def messages(findings):
    return [f.message for f in findings]


# ---------------------------------------------------------------- ProjectGraph


class TestProjectGraph:
    def test_indexes_classes_functions_constants(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/store.py": (
                "MAGIC = b\"RPXX\"\n"
                "\n"
                "class Store:\n"
                "    def __init__(self):\n"
                "        self._size = 0\n"
                "\n"
                "def loads(data):\n"
                "    return data\n"
            ),
        })
        graph = project.graph()
        assert "repro.core.store" in graph.modules
        assert "repro.core.store.Store" in graph.classes
        assert "repro.core.store.loads" in graph.functions
        assert graph.bytes_constant("repro.core.store", "MAGIC") == b"RPXX"

    def test_resolves_relative_imports(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/__init__.py": "",
            "src/repro/core/serialize.py": "def loads_x(data):\n    return data\n",
            "src/repro/core/mapped.py": (
                "from . import serialize\n"
                "from .serialize import loads_x as lx\n"
            ),
        })
        graph = project.graph()
        assert graph.resolve("repro.core.mapped", "serialize.loads_x") == (
            "repro.core.serialize.loads_x"
        )
        assert graph.resolve("repro.core.mapped", "lx") == (
            "repro.core.serialize.loads_x"
        )
        assert "repro.core.serialize" in graph.imports["repro.core.mapped"]

    def test_function_level_imports_resolve(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/a.py": "class Thing:\n    pass\n",
            "src/repro/core/b.py": (
                "def build():\n"
                "    from repro.core.a import Thing\n"
                "    return Thing()\n"
            ),
        })
        graph = project.graph()
        assert graph.resolve("repro.core.b", "Thing") == "repro.core.a.Thing"

    def test_struct_constant_lookup(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/fmt.py": (
                "import struct\n"
                "HEADER = struct.Struct(\"<4sB3xQ\")\n"
            ),
        })
        graph = project.graph()
        assert graph.struct_format("repro.core.fmt", "HEADER") == "<4sB3xQ"

    def test_graph_is_cached_per_scope(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/a.py": "X = 1\n",
        })
        assert project.graph() is project.graph()


# ---------------------------------------------------------------- R007


_FORKSAFE_PROTOCOL = (
    "    @property\n"
    "    def owner_pid(self):\n"
    "        return self._pid\n"
    "\n"
    "    def reopen(self):\n"
    "        return type(self)(self._path)\n"
    "\n"
    "    def process_local(self):\n"
    "        return self\n"
    "\n"
    "    def __getstate__(self):\n"
    "        return {\"path\": self._path}\n"
)


class TestForkSafetyRule:
    def test_flags_partial_protocol(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/half.py": (
                "class HalfStore:\n"
                "    def reopen(self):\n"
                "        return self\n"
                "\n"
                "    def process_local(self):\n"
                "        return self\n"
            ),
        })
        found = messages(run_rules(project, [ForkSafetyRule()]))
        assert any(
            "HalfStore implements only 2/4" in m and "owner_pid" in m
            for m in found
        )

    def test_flags_unprotected_instance_crossing_pool(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/leaky.py": (
                "import mmap\n"
                "import multiprocessing\n"
                "\n"
                "class RawStore:\n"
                "    def __init__(self, path):\n"
                "        fh = open(path, \"rb\")\n"
                "        self._map = mmap.mmap(fh.fileno(), 0)\n"
                "        self._file = fh\n"
                "\n"
                "    def close(self):\n"
                "        self._map.close()\n"
                "        self._file.close()\n"
                "\n"
                "def fan_out(path, work):\n"
                "    store = RawStore(path)\n"
                "    ctx = multiprocessing.get_context(\"fork\")\n"
                "    with ctx.Pool(2) as pool:\n"
                "        return pool.map(work, store)\n"
            ),
        })
        found = messages(run_rules(project, [ForkSafetyRule()]))
        assert any(
            "instance of RawStore" in m
            and "crosses a process boundary" in m
            and "lacks the fork-safety protocol" in m
            for m in found
        )

    def test_flags_raw_handle_in_process_args(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/serve/bad.py": (
                "import multiprocessing\n"
                "import socket\n"
                "\n"
                "def serve(run):\n"
                "    sock = socket.socket()\n"
                "    ctx = multiprocessing.get_context(\"fork\")\n"
                "    worker = ctx.Process(target=run, args=(sock,))\n"
                "    worker.start()\n"
            ),
        })
        found = messages(run_rules(project, [ForkSafetyRule()]))
        assert any(
            "raw socket handle 'sock'" in m and "Process(...)" in m
            for m in found
        )

    def test_flags_closure_capturing_handle(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/closure.py": (
                "import multiprocessing\n"
                "\n"
                "def build(path, pool):\n"
                "    fh = open(path, \"rb\")\n"
                "    def work(chunk):\n"
                "        return fh.read(chunk)\n"
                "    try:\n"
                "        return pool.map(work, [1, 2])\n"
                "    finally:\n"
                "        fh.close()\n"
            ),
        })
        found = messages(run_rules(project, [ForkSafetyRule()]))
        assert any(
            "worker closure" in m and "captures raw file handle 'fh'" in m
            for m in found
        )

    def test_protocol_complete_class_is_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/safe.py": (
                "import mmap\n"
                "import pickle\n"
                "\n"
                "class SafeStore:\n"
                "    def __init__(self, path):\n"
                "        import os\n"
                "        self._path = path\n"
                "        self._pid = os.getpid()\n"
                "        fh = open(path, \"rb\")\n"
                "        self._map = mmap.mmap(fh.fileno(), 0)\n"
                "        self._file = fh\n"
                "\n"
                + _FORKSAFE_PROTOCOL
                + "\n"
                "    def close(self):\n"
                "        self._map.close()\n"
                "\n"
                "def ship(path):\n"
                "    store = SafeStore(path)\n"
                "    return pickle.dumps(store)\n"
            ),
        })
        assert run_rules(project, [ForkSafetyRule()]) == []

    def test_pragma_suppresses_deliberate_prefork(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/serve/ok.py": (
                "import multiprocessing\n"
                "import socket\n"
                "\n"
                "def serve(run):\n"
                "    sock = socket.socket()\n"
                "    ctx = multiprocessing.get_context(\"fork\")\n"
                "    worker = ctx.Process(target=run, args=(sock,))  "
                "# lint: ignore[R007]\n"
                "    worker.start()\n"
            ),
        })
        assert run_rules(project, [ForkSafetyRule()]) == []


# ---------------------------------------------------------------- R008


class TestResourceLifecycleRule:
    def test_flags_never_closed(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/leak.py": (
                "def read_all(path):\n"
                "    fh = open(path, \"rb\")\n"
                "    data = fh.read()\n"
                "    return data\n"
            ),
        })
        found = messages(run_rules(project, [ResourceLifecycleRule()]))
        assert found == ["file handle 'fh' is never closed"]

    def test_flags_success_path_only_close(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/leak2.py": (
                "def read_all(path, parse):\n"
                "    fh = open(path, \"rb\")\n"
                "    data = parse(fh.read())\n"
                "    fh.close()\n"
                "    return data\n"
            ),
        })
        found = messages(run_rules(project, [ResourceLifecycleRule()]))
        assert found == ["file handle 'fh' is closed only on the success path"]

    def test_flags_inline_acquisition(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/leak3.py": (
                "import json\n"
                "\n"
                "def read_config(path):\n"
                "    return json.load(open(path))\n"
            ),
        })
        found = messages(run_rules(project, [ResourceLifecycleRule()]))
        assert found == ["file handle acquired inline is never closed"]

    def test_flags_class_without_releaser(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/holder.py": (
                "class Holder:\n"
                "    def __init__(self, path):\n"
                "        self._fh = open(path, \"rb\")\n"
            ),
        })
        found = messages(run_rules(project, [ResourceLifecycleRule()]))
        assert any(
            "Holder stores a file handle" in m and "no releaser" in m
            for m in found
        )

    def test_accepts_with_finally_and_transfer(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/clean.py": (
                "import mmap\n"
                "\n"
                "class Owner:\n"
                "    def __init__(self, fh):\n"
                "        self._fh = fh\n"
                "\n"
                "    def close(self):\n"
                "        self._fh.close()\n"
                "\n"
                "def read_with(path):\n"
                "    with open(path, \"rb\") as fh:\n"
                "        return fh.read()\n"
                "\n"
                "def read_finally(path):\n"
                "    fh = open(path, \"rb\")\n"
                "    try:\n"
                "        return fh.read()\n"
                "    finally:\n"
                "        fh.close()\n"
                "\n"
                "def open_owner(path):\n"
                "    fh = open(path, \"rb\")\n"
                "    try:\n"
                "        mapped = mmap.mmap(fh.fileno(), 0)\n"
                "    except (ValueError, OSError):\n"
                "        fh.close()\n"
                "        raise\n"
                "    owner = Owner(fh)\n"
                "    return owner, mapped\n"
                "\n"
                "def give_back(path):\n"
                "    fh = open(path, \"rb\")\n"
                "    return fh\n"
            ),
        })
        assert run_rules(project, [ResourceLifecycleRule()]) == []


# ---------------------------------------------------------------- R009


class TestThreadDisciplineRule:
    def test_flags_unguarded_shared_attribute(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/racy.py": (
                "import threading\n"
                "\n"
                "class Ingest:\n"
                "    def __init__(self):\n"
                "        self._sealed = 0\n"
                "\n"
                "    def seal(self):\n"
                "        def write():\n"
                "            self._sealed += 1\n"
                "        thread = threading.Thread(target=write)\n"
                "        thread.start()\n"
                "        return thread\n"
                "\n"
                "    def reset(self):\n"
                "        self._sealed = 0\n"
            ),
        })
        found = messages(run_rules(project, [ThreadDisciplineRule()]))
        assert any(
            "'_sealed'" in m and "without a shared lock" in m for m in found
        )

    def test_flags_self_method_target(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/racy2.py": (
                "import threading\n"
                "\n"
                "class Drainer:\n"
                "    def __init__(self):\n"
                "        self._queue = []\n"
                "\n"
                "    def start(self):\n"
                "        thread = threading.Thread(target=self._drain)\n"
                "        thread.start()\n"
                "\n"
                "    def _drain(self):\n"
                "        self._queue = []\n"
                "\n"
                "    def push(self, item):\n"
                "        self._queue = self._queue + [item]\n"
            ),
        })
        found = messages(run_rules(project, [ThreadDisciplineRule()]))
        assert any("'_queue'" in m for m in found)

    def test_lock_guarded_writes_are_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/guarded.py": (
                "import threading\n"
                "\n"
                "class Ingest:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._sealed = 0\n"
                "\n"
                "    def seal(self):\n"
                "        def write():\n"
                "            with self._lock:\n"
                "                self._sealed += 1\n"
                "        thread = threading.Thread(target=write)\n"
                "        thread.start()\n"
                "        return thread\n"
                "\n"
                "    def reset(self):\n"
                "        with self._lock:\n"
                "            self._sealed = 0\n"
            ),
        })
        assert run_rules(project, [ThreadDisciplineRule()]) == []

    def test_locals_only_seal_thread_is_clean(self, tmp_path):
        # the real ShardedIngest pattern: the thread touches only locals
        project = make_project(tmp_path, {
            "src/repro/core/localseal.py": (
                "import threading\n"
                "\n"
                "class Ingest:\n"
                "    def __init__(self):\n"
                "        self._pending = None\n"
                "\n"
                "    def seal(self, blob, path):\n"
                "        def write():\n"
                "            with open(path, \"wb\") as fh:\n"
                "                fh.write(blob)\n"
                "        thread = threading.Thread(target=write)\n"
                "        thread.start()\n"
                "        self._pending = thread\n"
                "\n"
                "    def finish(self):\n"
                "        if self._pending is not None:\n"
                "            self._pending.join()\n"
                "            self._pending = None\n"
            ),
        })
        assert run_rules(project, [ThreadDisciplineRule()]) == []


# ---------------------------------------------------------------- R010


class TestFormatSymmetryRule:
    def test_flags_unpacked_field_type_mismatch(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/fmt1.py": (
                "import struct\n"
                "\n"
                "def dumps_rec(count, size):\n"
                "    return struct.pack(\"<IQ\", count, size)\n"
                "\n"
                "def loads_rec(data):\n"
                "    (count,) = struct.unpack(\"<I\", data[:4])\n"
                "    return count\n"
            ),
        })
        found = messages(run_rules(project, [FormatSymmetryRule()]))
        assert found == [
            "dumps_rec() packs struct field type(s) 'Q' that loads_rec() "
            "never unpacks"
        ]

    def test_flags_unchecked_magic(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/fmt2.py": (
                "MAGIC = b\"RPXY\"\n"
                "\n"
                "def dumps_blob(payload):\n"
                "    return MAGIC + payload\n"
                "\n"
                "def loads_blob(data):\n"
                "    return data[4:]\n"
            ),
        })
        found = messages(run_rules(project, [FormatSymmetryRule()]))
        assert found == [
            "dumps_blob() writes constant bytes b'RPXY' that loads_blob() "
            "never references"
        ]

    def test_flags_missing_crc_check(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/fmt3.py": (
                "import struct\n"
                "import zlib\n"
                "\n"
                "def dumps_body(payload):\n"
                "    crc = zlib.crc32(payload) & 0xFFFFFFFF\n"
                "    return struct.pack(\"<I\", crc) + payload\n"
                "\n"
                "def loads_body(data):\n"
                "    (crc,) = struct.unpack(\"<I\", data[:4])\n"
                "    return data[4:]\n"
            ),
        })
        found = messages(run_rules(project, [FormatSymmetryRule()]))
        assert found == [
            "dumps_body() computes 1 CRC32 checksum(s) but loads_body() "
            "checks only 0"
        ]

    def test_symmetric_pair_is_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/fmt4.py": (
                "import struct\n"
                "import zlib\n"
                "\n"
                "MAGIC = b\"RPOK\"\n"
                "HEADER = struct.Struct(\"<4sBI\")\n"
                "\n"
                "def dumps_blob(payload):\n"
                "    crc = zlib.crc32(payload) & 0xFFFFFFFF\n"
                "    return HEADER.pack(MAGIC, 1, crc) + payload\n"
                "\n"
                "def loads_blob(data):\n"
                "    magic, version, crc = HEADER.unpack_from(data)\n"
                "    if magic != MAGIC:\n"
                "        raise ValueError(\"bad magic\")\n"
                "    payload = data[HEADER.size:]\n"
                "    if zlib.crc32(payload) & 0xFFFFFFFF != crc:\n"
                "        raise ValueError(\"bad crc\")\n"
                "    return payload\n"
            ),
        })
        assert run_rules(project, [FormatSymmetryRule()]) == []

    def test_facts_cross_module_through_reader_class(self, tmp_path):
        # the RPC2 shape: loads_* returns a lazy reader class; the CRC and
        # magic checks live in the class, not the loads function itself.
        project = make_project(tmp_path, {
            "src/repro/core/rdr.py": (
                "import struct\n"
                "import zlib\n"
                "from repro.core.fmtmod import MAGIC\n"
                "\n"
                "class Reader:\n"
                "    def __init__(self, data):\n"
                "        magic, crc = struct.unpack(\"<4sI\", data[:8])\n"
                "        if magic != MAGIC:\n"
                "            raise ValueError(\"bad magic\")\n"
                "        if zlib.crc32(data[8:]) & 0xFFFFFFFF != crc:\n"
                "            raise ValueError(\"bad crc\")\n"
                "        self.payload = data[8:]\n"
            ),
            "src/repro/core/fmtmod.py": (
                "import struct\n"
                "import zlib\n"
                "\n"
                "MAGIC = b\"RPLZ\"\n"
                "\n"
                "def dumps_blob(payload):\n"
                "    crc = zlib.crc32(payload) & 0xFFFFFFFF\n"
                "    return struct.pack(\"<4sI\", MAGIC, crc) + payload\n"
                "\n"
                "def loads_blob(data):\n"
                "    from repro.core.rdr import Reader\n"
                "    return Reader(data)\n"
            ),
        })
        assert run_rules(project, [FormatSymmetryRule()]) == []

    def test_memoryview_cast_counts_as_unpack(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/fmt5.py": (
                "import struct\n"
                "\n"
                "def dumps_index(offsets):\n"
                "    out = bytearray()\n"
                "    for value in offsets:\n"
                "        out += struct.pack(\"<Q\", value)\n"
                "    return bytes(out)\n"
                "\n"
                "def loads_index(data):\n"
                "    view = memoryview(data).cast(\"Q\")\n"
                "    return list(view)\n"
            ),
        })
        assert run_rules(project, [FormatSymmetryRule()]) == []


# ---------------------------------------------------------------- self-check


class TestRepositoryIsCleanForNewRules:
    def test_new_rules_clean_on_repo(self):
        project = Project(REPO_ROOT)
        rules = [
            ForkSafetyRule(),
            ResourceLifecycleRule(),
            ThreadDisciplineRule(),
            FormatSymmetryRule(),
        ]
        findings = run_rules(project, rules)
        assert findings == [], "\n".join(f.render() for f in findings)
