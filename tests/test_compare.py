"""Unit tests for the codec comparison helper."""

import pytest

from repro.analysis.compare import compare_codecs, comparison_rows, default_roster
from repro.paths.dataset import PathDataset


@pytest.fixture(scope="module")
def dataset():
    return PathDataset([[1, 2, 3, 4, 5]] * 30 + [[9, 2, 3, 4, 8]] * 15)


class TestRoster:
    def test_default_names(self):
        names = [c.name for c in default_roster(sample_exponent=0)]
        assert names == ["OFFS", "OFFS*", "Dlz4", "RSS", "GFS", "RePair"]

    def test_repair_optional(self):
        names = [c.name for c in default_roster(include_repair=False)]
        assert "RePair" not in names


class TestCompare:
    def test_all_measured_and_verified(self, dataset):
        results = compare_codecs(dataset, default_roster(sample_exponent=0))
        assert set(results) == {"OFFS", "OFFS*", "Dlz4", "RSS", "GFS", "RePair"}
        for m in results.values():
            assert m.compression_ratio > 0

    def test_rows_sorted_by_cr(self, dataset):
        results = compare_codecs(dataset, default_roster(sample_exponent=0))
        rows = comparison_rows(results)
        crs = [row[1] for row in rows[1:]]
        assert crs == sorted(crs, reverse=True)
        assert rows[0][0] == "codec"

    def test_custom_roster(self, dataset):
        from repro.core.config import OFFSConfig
        from repro.core.offs import OFFSCodec

        codec = OFFSCodec(OFFSConfig(iterations=2, sample_exponent=0))
        results = compare_codecs(dataset, [codec])
        assert list(results) == ["OFFS"]
