"""Unit tests for the OFFS codec façade and the TableCodec contract."""

import pytest

from repro.core.codec import TableCodec
from repro.core.config import OFFSConfig
from repro.core.errors import NotFittedError, TableError
from repro.core.offs import OFFSCodec
from repro.paths.dataset import PathDataset
from repro.paths.encoding import FixedWidthEncoding, VarintEncoding


class TestLifecycle:
    def test_unfitted_codec_refuses(self):
        codec = OFFSCodec()
        with pytest.raises(NotFittedError):
            codec.compress_path((1, 2, 3))
        with pytest.raises(NotFittedError):
            codec.table  # noqa: B018 - property access is the point

    def test_fit_returns_self(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config)
        assert codec.fit(simple_dataset) is codec

    def test_build_report_populated(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        assert codec.build_report is not None
        assert codec.build_report.sampled_paths == len(simple_dataset)


class TestRoundtrip:
    def test_every_training_path_roundtrips(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        for path in simple_dataset:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_unseen_path_roundtrips(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        unseen = (3, 10, 11, 12, 13, 1)  # hot subpath in a new context
        assert codec.decompress_path(codec.compress_path(unseen)) == unseen

    def test_hot_subpath_actually_contracts(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        token = codec.compress_path((1, 10, 11, 12, 13, 2))
        assert len(token) < 6

    def test_dataset_helpers(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        tokens = codec.compress_dataset(simple_dataset)
        assert codec.decompress_dataset(tokens) == list(simple_dataset)


class TestModes:
    def test_default_mode_parameters(self):
        codec = OFFSCodec.default()
        assert codec.config.iterations == 4
        assert codec.config.sample_exponent == 7
        assert codec.name == "OFFS"

    def test_fast_mode_parameters(self):
        codec = OFFSCodec.fast()
        assert codec.config.iterations == 2
        assert codec.name == "OFFS*"

    def test_mode_overrides(self):
        codec = OFFSCodec.fast(sample_exponent=0)
        assert codec.config.sample_exponent == 0


class TestBaseId:
    def test_explicit_base_id_respected(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config, base_id=5_000).fit(simple_dataset)
        assert codec.table.base_id == 5_000

    def test_sample_fit_full_compress_with_base_id(self, exhaustive_config):
        # Train on a sample missing the largest ids, compress the full set.
        full = PathDataset([[1, 2, 3, 4]] * 8 + [[9_000, 1, 2, 3]])
        sample = PathDataset([[1, 2, 3, 4]] * 8)
        codec = OFFSCodec(exhaustive_config, base_id=9_001).fit(sample)
        for path in full:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_sample_fit_without_base_id_fails_loudly(self, exhaustive_config):
        sample = PathDataset([[1, 2, 3, 4]] * 8)
        codec = OFFSCodec(exhaustive_config).fit(sample)
        with pytest.raises(TableError, match="collides"):
            codec.compress_path((9_000, 1, 2, 3))


class TestSizes:
    def test_rule_size_positive_after_fit(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        assert codec.rule_size_bytes() > 0

    def test_compressed_size_includes_length_marker(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        token = codec.compress_path((7, 8, 9))
        enc = FixedWidthEncoding(4)
        assert codec.compressed_size_bytes(token, enc) == 4 * (len(token) + 1)

    def test_varint_sizes_smaller_for_small_ids(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        token = codec.compress_path((7, 8, 9))
        assert codec.compressed_size_bytes(token, VarintEncoding()) < \
            codec.compressed_size_bytes(token, FixedWidthEncoding(4))


class TestMatcherBackends:
    @pytest.mark.parametrize("backend", ["hash", "multilevel", "trie"])
    def test_all_backends_produce_identical_tokens(self, simple_dataset, backend):
        cfg = OFFSConfig(iterations=3, sample_exponent=0, matcher=backend)
        codec = OFFSCodec(cfg).fit(simple_dataset)
        reference = OFFSCodec(
            OFFSConfig(iterations=3, sample_exponent=0, matcher="hash")
        ).fit(simple_dataset)
        for path in simple_dataset:
            assert codec.compress_path(path) == reference.compress_path(path)


class TestContract:
    def test_table_codec_is_abstract(self):
        with pytest.raises(TypeError):
            TableCodec()  # build_table not implemented

    def test_repr_mentions_name(self):
        assert "OFFS" in repr(OFFSCodec())
