"""Property-based invariants of the whole compression stack.

The single non-negotiable property is losslessness: for any dataset and any
codec in the repository, ``decompress(compress(P)) == P`` for every path —
including paths never seen at fit time (within the trained id universe).
Further invariants: compressed streams never mix id spaces, table entries
respect δ, and the store round-trips through serialization.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.dlz4 import Dlz4Codec
from repro.baselines.gfs import GFSCodec
from repro.baselines.rss import RSSCodec
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.serialize import dumps_store, loads_store
from repro.core.store import CompressedPathStore
from repro.paths.dataset import PathDataset

# Simple paths over a small id universe, so hot subpaths actually recur.
path_strategy = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=25, unique=True
).map(tuple)
dataset_strategy = st.lists(path_strategy, min_size=1, max_size=40).map(PathDataset)


def exhaustive_offs() -> OFFSCodec:
    return OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))


@settings(max_examples=40, deadline=None)
@given(dataset_strategy)
def test_offs_roundtrips_every_path(dataset):
    codec = exhaustive_offs().fit(dataset)
    for path in dataset:
        assert codec.decompress_path(codec.compress_path(path)) == path


@settings(max_examples=25, deadline=None)
@given(dataset_strategy, path_strategy)
def test_offs_roundtrips_unseen_paths(dataset, unseen):
    # The unseen path may use ids the training data never showed, so the
    # codec is fitted with an explicit base_id covering the whole universe
    # (the documented contract for sample-trained tables).
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0), base_id=41)
    codec.fit(dataset)
    assert codec.decompress_path(codec.compress_path(unseen)) == unseen


@settings(max_examples=25, deadline=None)
@given(dataset_strategy)
def test_offs_table_respects_delta(dataset):
    codec = exhaustive_offs().fit(dataset)
    assert codec.table.max_subpath_length <= codec.config.delta


@settings(max_examples=25, deadline=None)
@given(dataset_strategy)
def test_compressed_streams_partition_id_spaces(dataset):
    codec = exhaustive_offs().fit(dataset)
    base = codec.table.base_id
    limit = base + len(codec.table)
    for path in dataset:
        for symbol in codec.compress_path(path):
            assert symbol < limit
            if symbol >= base:
                assert codec.table.expand(symbol)  # resolvable supernode


@settings(max_examples=25, deadline=None)
@given(dataset_strategy)
def test_compression_never_grows_symbol_count(dataset):
    codec = exhaustive_offs().fit(dataset)
    for path in dataset:
        assert len(codec.compress_path(path)) <= len(path)


@settings(max_examples=20, deadline=None)
@given(dataset_strategy)
def test_rss_and_gfs_roundtrip(dataset):
    for codec in (
        RSSCodec(capacity=32, sample_exponent=0),
        GFSCodec(capacity=32, sample_exponent=0),
    ):
        codec.fit(dataset)
        for path in dataset:
            assert codec.decompress_path(codec.compress_path(path)) == path


@settings(max_examples=15, deadline=None)
@given(dataset_strategy)
def test_dlz4_roundtrip(dataset):
    codec = Dlz4Codec(sample_exponent=0).fit(dataset)
    for path in dataset:
        assert codec.decompress_path(codec.compress_path(path)) == path


@settings(max_examples=20, deadline=None)
@given(dataset_strategy)
def test_store_serialization_roundtrip(dataset):
    codec = exhaustive_offs()
    store = CompressedPathStore.from_codec(dataset, codec)
    restored = loads_store(dumps_store(store))
    assert restored.retrieve_all() == [tuple(p) for p in dataset]


@settings(max_examples=20, deadline=None)
@given(dataset_strategy, st.integers(min_value=0, max_value=10_000))
def test_store_random_access_matches_original(dataset, pick):
    codec = exhaustive_offs()
    store = CompressedPathStore.from_codec(dataset, codec)
    path_id = pick % len(store)
    assert store.retrieve(path_id) == dataset[path_id]
