"""The codec contract, enforced uniformly across every compressor.

One parametrized suite runs each codec in the repository through the same
obligations: lossless round-trip (training and unseen paths), byte-exact
size accounting, fit-before-use discipline, determinism, and degenerate
inputs.  A new codec added to the roster gets the whole battery for free.
"""

import pytest

from repro.baselines.afs import AFSCodec
from repro.baselines.dlz4 import Dlz4Codec
from repro.baselines.gfs import GFSCodec
from repro.baselines.rss import RSSCodec
from repro.core.config import OFFSConfig
from repro.core.errors import NotFittedError, ReproError
from repro.core.offs import OFFSCodec
from repro.paths.dataset import PathDataset
from repro.paths.encoding import FixedWidthEncoding, VarintEncoding


def offs_default():
    return OFFSCodec(OFFSConfig(iterations=4, sample_exponent=0))


def offs_fast():
    codec = OFFSCodec(OFFSConfig(iterations=2, sample_exponent=0))
    codec.name = "OFFS*"
    return codec


def offs_topdown():
    return OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0, topdown_rounds=2))


def offs_trie():
    return OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0, matcher="trie"))


def offs_multilevel():
    return OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0, matcher="multilevel"))


CODEC_FACTORIES = {
    "OFFS": offs_default,
    "OFFS*": offs_fast,
    "OFFS+topdown": offs_topdown,
    "OFFS+trie": offs_trie,
    "OFFS+multilevel": offs_multilevel,
    "RSS": lambda: RSSCodec(capacity=64, sample_exponent=0),
    "GFS": lambda: GFSCodec(capacity=64, sample_exponent=0),
    "AFS": lambda: AFSCodec(threshold=4),
    "Dlz4-zlib": lambda: Dlz4Codec(backend="zlib", sample_exponent=0),
    "Dlz4-lz77": lambda: Dlz4Codec(backend="lz77", sample_exponent=0),
}


@pytest.fixture(scope="module")
def dataset():
    # Large enough that every codec's rule overhead (tables, Dlz4's
    # dictionary) amortizes; hot enough that all of them find savings.
    hot = [50, 51, 52, 53, 54]
    return PathDataset(
        ([[1, *hot, 2]] * 8 + [[3, *hot, 4]] * 5 + [[9, 8, 7, 6]] * 4
         + [[20, 21, 22]] * 3) * 20,
        name="contract",
    )


@pytest.fixture(params=sorted(CODEC_FACTORIES), ids=sorted(CODEC_FACTORIES))
def codec(request, dataset):
    return CODEC_FACTORIES[request.param]().fit(dataset)


class TestRoundtrip:
    def test_every_training_path(self, codec, dataset):
        for path in dataset:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_unseen_path_within_universe(self, codec):
        unseen = (2, 50, 51, 52, 53, 54, 9)
        assert codec.decompress_path(codec.compress_path(unseen)) == unseen

    def test_dataset_helpers_roundtrip(self, codec, dataset):
        tokens = codec.compress_dataset(dataset)
        assert codec.decompress_dataset(tokens) == list(dataset)

    def test_single_vertex_path(self, codec):
        assert codec.decompress_path(codec.compress_path((5,))) == (5,)

    def test_two_vertex_path(self, codec):
        assert codec.decompress_path(codec.compress_path((5, 6))) == (5, 6)


class TestDeterminism:
    def test_compression_is_deterministic(self, codec, dataset):
        path = dataset[0]
        assert codec.compress_path(path) == codec.compress_path(path)

    def test_refit_reproduces_tokens(self, dataset, codec, request):
        name = request.node.callspec.params["codec"]
        other = CODEC_FACTORIES[name]().fit(dataset)
        for path in list(dataset)[:5]:
            assert other.compress_path(path) == codec.compress_path(path)


class TestSizeAccounting:
    def test_rule_size_non_negative(self, codec):
        assert codec.rule_size_bytes() >= 0
        assert codec.rule_size_bytes(VarintEncoding()) >= 0

    def test_compressed_size_positive(self, codec, dataset):
        token = codec.compress_path(dataset[0])
        assert codec.compressed_size_bytes(token) > 0

    def test_size_is_encoding_sensitive(self, codec, dataset):
        token = codec.compress_path(dataset[0])
        fixed = codec.compressed_size_bytes(token, FixedWidthEncoding(4))
        varint = codec.compressed_size_bytes(token, VarintEncoding())
        assert varint <= fixed

    def test_hot_data_compresses(self, codec, dataset):
        """Every codec must beat raw size on this redundant dataset."""
        from repro.analysis.sizing import dataset_raw_bytes, tokens_total_bytes

        tokens = codec.compress_dataset(dataset)
        assert tokens_total_bytes(codec, tokens) < dataset_raw_bytes(dataset)


class TestDiscipline:
    def test_unfitted_codec_refuses(self, request):
        name = request.node.callspec.params.get("codec") if hasattr(
            request.node, "callspec") else None
        # Build a fresh, unfitted instance of each codec type.
        for factory in CODEC_FACTORIES.values():
            fresh = factory()
            with pytest.raises((NotFittedError, ReproError)):
                fresh.compress_path((1, 2, 3))
            break  # one representative suffices; the loop form documents intent

    def test_empty_path(self, codec):
        assert codec.decompress_path(codec.compress_path(())) == ()
