"""Unit tests for compressed-data analytics, checked against brute force."""

from collections import Counter

import pytest

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.queries.analytics import (
    compression_summary,
    hot_subpaths,
    path_lengths,
    supernode_usage,
    vertex_histogram,
)
from repro.workloads.registry import make_dataset


@pytest.fixture(scope="module")
def setup():
    dataset = make_dataset("sanfrancisco", "tiny")
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
    store = CompressedPathStore.from_codec(dataset, codec)
    return dataset, store


class TestVertexHistogram:
    def test_matches_brute_force(self, setup):
        dataset, store = setup
        brute = Counter()
        for path in dataset:
            brute.update(path)
        assert vertex_histogram(store) == dict(brute)

    def test_empty_store(self, setup):
        _, store = setup
        empty = CompressedPathStore(store.table)
        assert vertex_histogram(empty) == {}


class TestPathLengths:
    def test_matches_brute_force(self, setup):
        dataset, store = setup
        assert path_lengths(store) == [len(p) for p in dataset]

    def test_lengths_exceed_token_sizes_when_compressed(self, setup):
        _, store = setup
        lengths = path_lengths(store)
        token_sizes = [len(t) for t in store.tokens()]
        assert sum(lengths) > sum(token_sizes)


class TestSupernodeUsage:
    def test_counts_match_token_scan(self, setup):
        _, store = setup
        usage = supernode_usage(store)
        base = store.table.base_id
        brute = Counter()
        for token in store.tokens():
            for s in token:
                if s >= base:
                    brute[s] += 1
        for sid, count in usage.items():
            assert count == brute.get(sid, 0)

    def test_reports_dead_entries_at_zero(self, setup):
        _, store = setup
        usage = supernode_usage(store)
        assert len(usage) == len(store.table)


class TestHotSubpaths:
    def test_sorted_by_savings(self, setup):
        _, store = setup
        rows = hot_subpaths(store, top=5)
        savings = [saved for _, _, saved in rows]
        assert savings == sorted(savings, reverse=True)

    def test_savings_arithmetic(self, setup):
        _, store = setup
        for subpath, uses, saved in hot_subpaths(store, top=3):
            assert saved == uses * (len(subpath) - 1)

    def test_top_validated(self, setup):
        _, store = setup
        with pytest.raises(ValueError):
            hot_subpaths(store, top=0)


class TestSummary:
    def test_consistent_with_store(self, setup):
        dataset, store = setup
        summary = compression_summary(store)
        assert summary["paths"] == len(dataset)
        assert summary["nodes"] == sum(len(p) for p in dataset)
        assert summary["compressed_symbols"] == store.compressed_symbol_count()
        assert summary["byte_ratio"] == pytest.approx(store.compression_ratio())
        assert summary["symbol_ratio"] > 1.0
