"""Execute the doctest examples embedded in public docstrings."""

import doctest

import repro.paths.path
import repro.paths.preprocess
import repro.core.offs


def _run(module) -> None:
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failure(s)"
    assert results.attempted > 0, f"{module.__name__}: no doctests found"


def test_path_module_doctests():
    _run(repro.paths.path)


def test_preprocess_module_doctests():
    _run(repro.paths.preprocess)


def test_offs_module_doctests():
    _run(repro.core.offs)
