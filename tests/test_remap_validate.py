"""Unit tests for frequency remapping and archive validation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.core.validate import validate_store
from repro.paths.dataset import PathDataset
from repro.paths.encoding import VarintEncoding
from repro.paths.remap import FrequencyRemapper
from repro.workloads.registry import make_dataset


class TestFrequencyRemapper:
    @pytest.fixture()
    def ds(self):
        return PathDataset([[500, 900, 7]] * 5 + [[900, 7]] * 3 + [[123, 500]])

    def test_hottest_vertex_gets_id_zero(self, ds):
        remapper = FrequencyRemapper.fit(ds)
        # 900 and 7 occur 8 times each; tie breaks on original id -> 7 first.
        assert remapper.apply_vertex(7) == 0
        assert remapper.apply_vertex(900) == 1

    def test_roundtrip(self, ds):
        remapper = FrequencyRemapper.fit(ds)
        for path in ds:
            assert remapper.invert_path(remapper.apply_path(path)) == path

    def test_transform_restore(self, ds):
        remapper = FrequencyRemapper.fit(ds)
        remapped = remapper.transform(ds)
        assert remapper.restore(remapped) == ds
        assert remapped.name.endswith("/remapped")

    def test_table_roundtrip(self, ds):
        remapper = FrequencyRemapper.fit(ds)
        rebuilt = FrequencyRemapper.from_table(remapper.as_table())
        for path in ds:
            assert rebuilt.apply_path(path) == remapper.apply_path(path)

    def test_non_bijection_rejected(self):
        with pytest.raises(ValueError):
            FrequencyRemapper({1: 0, 2: 0})
        with pytest.raises(ValueError):
            FrequencyRemapper({1: 5})

    def test_unknown_vertex_raises(self, ds):
        remapper = FrequencyRemapper.fit(ds)
        with pytest.raises(KeyError):
            remapper.apply_vertex(424242)

    def test_varint_bytes_shrink(self):
        ds = make_dataset("sanfrancisco", "tiny")
        remapper = FrequencyRemapper.fit(ds)
        remapped = remapper.transform(ds)
        enc = VarintEncoding()
        before = sum(enc.size_of(p) for p in ds)
        after = sum(enc.size_of(p) for p in remapped)
        assert after <= before

    @given(st.lists(st.lists(st.integers(0, 500), min_size=1, max_size=10),
                    min_size=1, max_size=20))
    def test_roundtrip_property(self, paths):
        ds = PathDataset(paths)
        remapper = FrequencyRemapper.fit(ds)
        assert remapper.restore(remapper.transform(ds)) == ds


class TestValidateStore:
    @pytest.fixture()
    def store(self):
        ds = make_dataset("sanfrancisco", "tiny")
        codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
        return CompressedPathStore.from_codec(ds, codec)

    def test_healthy_store_passes(self, store):
        report = validate_store(store, sample=50)
        assert report.ok, report.errors
        assert report.sampled == 50
        assert "OK" in report.summary()

    def test_small_store_samples_everything(self):
        ds = PathDataset([[1, 2, 3]] * 5)
        codec = OFFSCodec(OFFSConfig(iterations=2, sample_exponent=0))
        store = CompressedPathStore.from_codec(ds, codec)
        report = validate_store(store, sample=100)
        assert report.sampled == 5

    def test_out_of_range_symbol_detected(self, store):
        store._tokens[3] = (store.table.base_id + len(store.table) + 7,)
        report = validate_store(store)
        assert not report.ok
        assert any("beyond table" in e for e in report.errors)

    def test_table_tampering_detected(self, store):
        store.table._by_id[store.table.base_id + len(store.table)] = (1, 2)
        report = validate_store(store)
        assert not report.ok
        assert any("table:" in e for e in report.errors)

    def test_dead_entries_counted(self):
        from repro.core.supernode_table import SupernodeTable

        table = SupernodeTable(100, [(1, 2), (3, 4)])
        store = CompressedPathStore(table)
        store.append((1, 2, 9))  # uses (1,2) only
        report = validate_store(store)
        assert report.dead_entries == 1
        assert report.ok

    def test_empty_store(self):
        from repro.core.supernode_table import SupernodeTable

        store = CompressedPathStore(SupernodeTable(10))
        report = validate_store(store)
        assert report.ok and report.sampled == 0


class TestVerifyCli:
    def test_verify_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.paths.io import save_text

        ds = PathDataset([[1, 2, 3, 4]] * 10)
        src = tmp_path / "p.txt"
        save_text(ds, src)
        archive = tmp_path / "p.offs"
        assert main(["compress", str(src), str(archive), "--sample-exponent", "0"]) == 0
        capsys.readouterr()
        assert main(["verify", str(archive)]) == 0
        assert "OK" in capsys.readouterr().out
