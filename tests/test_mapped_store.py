"""Round-trip and behaviour tests for the v2 mapped store.

The central contract: a :class:`MappedPathStore` over ``dumps_store_v2``
output answers every query identically to the in-memory
:class:`CompressedPathStore` it came from, and to a v1
``dumps_store``/``loads_store`` round trip of the same archive — across
matcher backends, varint widths and slice shapes.  Openness is lazy: the
constructor touches 64 bytes, the table decodes on first access.
"""

import mmap
import multiprocessing
import os
import pickle

import pytest

from repro.core.config import MATCHER_BACKENDS, OFFSConfig
from repro.core.errors import CorruptDataError, PathIdError, StateError
from repro.core.mapped import MappedPathStore
from repro.core.offs import OFFSCodec
from repro.core.serialize import (
    dump_store_file,
    dumps_store,
    dumps_store_v2,
    load_store_file,
    loads_store,
    loads_store_v2,
)
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.obs import catalog
from repro.obs.runtime import instrumented
from repro.paths.dataset import PathDataset


def _dataset():
    # Vertex ids chosen to exercise 1-, 2-, 3- and 5-byte varints.
    wide = [7, 130, 16400, 1 << 21, (1 << 28) + 3]
    return PathDataset(
        [[1, 2, 3, 4, 5]] * 8
        + [[9, 2, 3, 4]] * 4
        + [wide] * 3
        + [[1, 2, 3] + wide]
        + [[42]]
    )


@pytest.fixture(scope="module", params=MATCHER_BACKENDS)
def stores(request):
    ds = _dataset()
    codec = OFFSCodec(
        OFFSConfig(iterations=3, sample_exponent=0, matcher=request.param),
        base_id=(1 << 28) + 10,
    )
    memory = CompressedPathStore.from_codec(ds, codec)
    mapped = loads_store_v2(dumps_store_v2(memory))
    return memory, mapped


class TestRoundTripEquivalence:
    def test_length_and_tokens(self, stores):
        memory, mapped = stores
        assert len(mapped) == len(memory)
        assert mapped.tokens() == memory.tokens()

    def test_every_retrieve(self, stores):
        memory, mapped = stores
        for pid in range(len(memory)):
            assert mapped.retrieve(pid) == memory.retrieve(pid)

    def test_retrieve_all_and_iter(self, stores):
        memory, mapped = stores
        assert mapped.retrieve_all() == memory.retrieve_all()
        assert list(mapped) == list(memory)

    def test_retrieve_many(self, stores):
        memory, mapped = stores
        ids = [0, len(memory) - 1, 3]
        assert mapped.retrieve_many(ids) == memory.retrieve_many(ids)

    def test_slices_match_in_memory_store(self, stores):
        memory, mapped = stores
        for pid in range(len(memory)):
            n = memory.expanded_length(pid)
            assert mapped.expanded_length(pid) == n
            for start, stop in [
                (None, None), (0, 1), (-1, None), (1, -1), (2, 3), (-n, n + 5),
            ]:
                assert mapped.retrieve_slice(pid, start, stop) == \
                    memory.retrieve_slice(pid, start, stop)

    def test_matches_v1_round_trip(self, stores):
        memory, mapped = stores
        v1 = loads_store(dumps_store(memory))
        assert mapped.tokens() == v1.tokens()
        assert mapped.retrieve_all() == v1.retrieve_all()

    def test_size_accounting_matches(self, stores):
        memory, mapped = stores
        assert mapped.compressed_symbol_count() == memory.compressed_symbol_count()
        assert mapped.compressed_size_bytes() == memory.compressed_size_bytes()
        assert mapped.raw_size_bytes() == memory.raw_size_bytes()
        assert mapped.compression_ratio() == memory.compression_ratio()

    def test_to_store_materializes_identical_archive(self, stores):
        memory, mapped = stores
        copy = mapped.to_store()
        assert copy.tokens() == memory.tokens()
        assert dumps_store_v2(copy) == dumps_store_v2(memory)


class TestFileRoundTrip:
    def test_dump_and_open(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        written = dump_store_file(memory, path)
        with load_store_file(path) as mapped:
            assert len(mapped._buf) == written
            assert mapped.retrieve_all() == memory.retrieve_all()

    def test_open_records_metrics(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        with instrumented() as obs:
            with MappedPathStore.open(path) as mapped:
                mapped.retrieve(0)
            reg = obs.registry
            assert reg.timer(catalog.STORE_OPEN_SECONDS).count == 1
            assert reg.gauge(catalog.STORE_MAPPED_BYTES).value > 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.rpc2"
        path.write_bytes(b"")
        with pytest.raises(CorruptDataError):
            MappedPathStore.open(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        memory = _make_small_store()
        path = tmp_path / "v1.rpcs"
        path.write_bytes(dumps_store(memory))
        with pytest.raises(CorruptDataError):
            MappedPathStore.open(str(path))


class TestLaziness:
    def test_table_not_decoded_until_accessed(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        with MappedPathStore.open(path) as mapped:
            assert mapped._table is None  # open parsed only the header
            assert len(mapped) == len(memory)  # header-only query
            assert mapped._table is None
            mapped.retrieve(0)
            assert mapped._table is not None

    def test_open_cost_independent_of_path_count(self, tmp_path):
        # Not a timing assertion (flaky); the structural guarantee is that
        # opening never touches the index or payload sections.
        memory = _make_small_store()
        blob = bytearray(dumps_store_v2(memory))
        header = loads_store_v2(bytes(blob))._header
        # Corrupt the payload: open must still succeed (nothing there is
        # read), and only retrieval may fail.
        for pos in range(header.payload_offset, header.total_size):
            blob[pos] ^= 0xFF
        store = loads_store_v2(bytes(blob))
        assert len(store) == len(memory)


class TestValidation:
    def test_retrieve_many_validates_up_front(self):
        memory = _make_small_store()
        mapped = loads_store_v2(dumps_store_v2(memory))
        with instrumented() as obs:
            with pytest.raises(PathIdError):
                mapped.retrieve_many([0, 1, 999])
            assert obs.registry.counter(catalog.STORE_RETRIEVED_PATHS).value == 0

    def test_bad_ids_raise(self):
        mapped = loads_store_v2(dumps_store_v2(_make_small_store()))
        for bad in (-1, len(mapped), len(mapped) + 10):
            with pytest.raises(PathIdError):
                mapped.retrieve(bad)
            with pytest.raises(PathIdError):
                mapped.retrieve_slice(bad, 0, 1)


class TestCloseSemantics:
    def test_close_releases_mapping(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        mapped = MappedPathStore.open(path)
        mapped.retrieve(0)
        _ = mapped.token(0)  # forces the index memoryview export
        mapped.close()  # must not raise BufferError
        mapped.close()  # idempotent

    def test_context_manager(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        with MappedPathStore.open(path) as mapped:
            assert mapped.retrieve(0) == memory.retrieve(0)

    def test_close_is_noop_for_byte_buffers(self):
        mapped = loads_store_v2(dumps_store_v2(_make_small_store()))
        mapped.retrieve(0)
        mapped.close()


class TestRetrieveBatch:
    """retrieve_batch = retrieve_many through the flat kernel."""

    def test_matches_retrieve_many(self, stores):
        memory, mapped = stores
        n = len(mapped)
        for ids in ([], [0], [n - 1, 0, 3], list(range(n)), [2, 2, 2]):
            assert mapped.retrieve_batch(ids) == mapped.retrieve_many(ids)
            assert mapped.retrieve_batch(ids) == memory.retrieve_many(ids)

    def test_empty_batch_is_empty(self):
        mapped = loads_store_v2(dumps_store_v2(_make_small_store()))
        assert mapped.retrieve_batch([]) == []
        assert mapped.retrieve_batch(iter(())) == []

    def test_validates_up_front(self):
        mapped = loads_store_v2(dumps_store_v2(_make_small_store()))
        with instrumented() as obs:
            with pytest.raises(PathIdError):
                mapped.retrieve_batch([0, 1, 999])
            # Nothing decompressed: the bad id failed before the kernel ran.
            assert obs.registry.counter(catalog.STORE_RETRIEVED_PATHS).value == 0

    def test_records_batch_metrics(self):
        mapped = loads_store_v2(dumps_store_v2(_make_small_store()))
        with instrumented() as obs:
            mapped.retrieve_batch([0, 1, 2])
            reg = obs.registry
            assert reg.counter(catalog.STORE_RETRIEVED_PATHS).value == 3
            assert reg.timer(catalog.STORE_RETRIEVE_SECONDS).count == 1

    def test_duplicate_ids_repeat_in_output(self, stores):
        # Regression: duplicates must not be deduplicated by the grouping —
        # each occurrence gets its own slot, in input order.
        memory, mapped = stores
        ids = [3, 0, 3, 3, 1, 0]
        out = mapped.retrieve_batch(ids)
        assert out == memory.retrieve_many(ids)
        assert out[0] == out[2] == out[3] == mapped.retrieve(3)

    def test_generator_input_single_pass(self, stores):
        # Regression: a generator can only be consumed once; the batch path
        # must materialize it exactly once (validate + decode off one list).
        _, mapped = stores
        ids = [4, 1, 4]
        assert mapped.retrieve_batch(pid for pid in ids) == mapped.retrieve_many(ids)
        consumed = iter(ids)
        assert mapped.retrieve_batch(consumed) == mapped.retrieve_many(ids)
        assert list(consumed) == []  # fully drained, not partially read

    def test_generator_with_bad_id_fails_like_retrieve_many(self, stores):
        # Up-front validation parity: same error class for the same input,
        # even when the bad id hides at the end of a single-pass iterable.
        _, mapped = stores
        n = len(mapped)
        with pytest.raises(PathIdError):
            mapped.retrieve_many(pid for pid in [0, 1, n])
        with pytest.raises(PathIdError):
            mapped.retrieve_batch(pid for pid in [0, 1, n])
        with pytest.raises(PathIdError):
            mapped.retrieve_batch(pid for pid in [0, 1, -1])


_fork_required = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method not available on this platform",
)


class TestProcessBoundaries:
    """The store survives pickling and forking (the repro.serve contract)."""

    def test_pickle_round_trip_file_backed(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        with MappedPathStore.open(path) as original:
            clone = pickle.loads(pickle.dumps(original))
            try:
                assert clone is not original
                assert clone.name == path
                assert clone.owner_pid == os.getpid()
                assert clone.retrieve_all() == original.retrieve_all()
            finally:
                clone.close()  # independent lifecycle from the original
            assert original.retrieve(0) == memory.retrieve(0)

    def test_pickle_round_trip_buffer_backed(self):
        memory = _make_small_store()
        original = loads_store_v2(dumps_store_v2(memory))
        clone = pickle.loads(pickle.dumps(original))
        assert clone.retrieve_all() == memory.retrieve_all()

    def test_pickle_raw_mmap_rejected(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        with open(path, "rb") as fh:
            raw = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            try:
                store = MappedPathStore(raw)  # caller-owned mapping, no path
                with pytest.raises(StateError):
                    pickle.dumps(store)
                with pytest.raises(StateError):
                    store.reopen()
            finally:
                raw.close()

    def test_reopen_file_backed(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        with MappedPathStore.open(path) as original:
            fresh = original.reopen()
            try:
                assert fresh is not original
                assert fresh.retrieve_all() == memory.retrieve_all()
            finally:
                fresh.close()
            assert original.retrieve(0) == memory.retrieve(0)

    def test_reopen_buffer_backed_shares_buffer(self):
        original = loads_store_v2(dumps_store_v2(_make_small_store()))
        fresh = original.reopen()
        assert fresh is not original
        assert fresh._buf is original._buf
        assert fresh.retrieve_all() == original.retrieve_all()

    def test_process_local_is_identity_in_owner(self, tmp_path):
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        with MappedPathStore.open(path) as store:
            assert store.process_local() is store

    @_fork_required
    def test_fork_then_query_from_child(self, tmp_path):
        """Regression: a forked worker re-establishes the store and answers
        identically — the exact access pattern of a repro.serve worker."""
        memory = _make_small_store()
        path = str(tmp_path / "archive.rpc2")
        dump_store_file(memory, path)
        store = MappedPathStore.open(path)
        try:
            expected = store.retrieve_all()
            context = multiprocessing.get_context("fork")
            parent_conn, child_conn = context.Pipe(duplex=False)

            def child() -> None:
                local = store.process_local()
                child_conn.send({
                    "reopened": local is not store,
                    "owner_is_child": local.owner_pid == os.getpid(),
                    "paths": local.retrieve_all(),
                    "batch": local.retrieve_batch([0, 2, 4]),
                    "slice": local.retrieve_slice(0, 1, -1),
                })
                local.close()

            worker = context.Process(target=child)
            worker.start()
            result = parent_conn.recv()
            worker.join(10.0)
            assert worker.exitcode == 0
            assert result["reopened"] is True
            assert result["owner_is_child"] is True
            assert result["paths"] == expected
            assert result["batch"] == store.retrieve_many([0, 2, 4])
            assert result["slice"] == store.retrieve_slice(0, 1, -1)
            # The parent's mapping is untouched by the child's lifecycle.
            assert store.retrieve_all() == expected
        finally:
            store.close()


class TestQueryLayerCompatibility:
    def test_vertex_index_and_query_engine_work_unchanged(self):
        from repro.queries.retrieval import PathQueryEngine

        memory = _make_small_store()
        mapped = loads_store_v2(dumps_store_v2(memory))
        on_memory = PathQueryEngine(memory)
        on_mapped = PathQueryEngine(mapped)
        assert on_mapped.affected_vertices(2) == on_memory.affected_vertices(2)
        assert on_mapped.paths_between(1, 5) == on_memory.paths_between(1, 5)


def _make_small_store():
    table = SupernodeTable(100, [(1, 2, 3), (4, 5)])
    store = CompressedPathStore(table)
    store.extend([(1, 2, 3, 4, 5), (1, 2, 3, 9), (4, 5, 6), (7, 8), (42,)])
    return store
