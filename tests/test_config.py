"""Unit tests for OFFSConfig validation and derived quantities."""

import pytest

from repro.core.config import MATCHER_BACKENDS, OFFSConfig
from repro.core.errors import ConfigError


class TestDefaults:
    def test_paper_deployed_defaults(self):
        cfg = OFFSConfig()
        assert cfg.delta == 8
        assert cfg.alpha == 5
        assert cfg.iterations == 4
        assert cfg.sample_exponent == 7
        assert cfg.beta == 500.0

    def test_default_mode(self):
        cfg = OFFSConfig.default_mode()
        assert (cfg.iterations, cfg.sample_exponent) == (4, 7)

    def test_fast_mode(self):
        cfg = OFFSConfig.fast_mode()
        assert (cfg.iterations, cfg.sample_exponent) == (2, 7)

    def test_mode_overrides(self):
        cfg = OFFSConfig.fast_mode(delta=6)
        assert cfg.delta == 6 and cfg.iterations == 2


class TestDerived:
    def test_sample_stride(self):
        assert OFFSConfig(sample_exponent=0).sample_stride == 1
        assert OFFSConfig(sample_exponent=7).sample_stride == 128

    def test_lambda_divisor_semantics(self):
        cfg = OFFSConfig(beta=500)
        assert cfg.lambda_for(1_000_000) == 2000

    def test_lambda_floor(self):
        assert OFFSConfig(beta=500).lambda_for(100) == 64

    def test_capacity_overrides_lambda(self):
        assert OFFSConfig(capacity=7).lambda_for(10**9) == 7

    def test_with_returns_validated_copy(self):
        cfg = OFFSConfig()
        other = cfg.with_(iterations=9)
        assert other.iterations == 9 and cfg.iterations == 4
        with pytest.raises(ConfigError):
            cfg.with_(delta=1)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"delta": 1},
        {"alpha": 0},
        {"alpha": 8, "delta": 8},
        {"iterations": -1},
        {"sample_exponent": -1},
        {"beta": 0},
        {"beta": -5},
        {"capacity": 0},
        {"min_final_weight": 0},
        {"matcher": "btree"},
        {"topdown_rounds": -1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            OFFSConfig(**kwargs)

    def test_all_matcher_backends_accepted(self):
        for backend in MATCHER_BACKENDS:
            assert OFFSConfig(matcher=backend).matcher == backend

    def test_frozen(self):
        cfg = OFFSConfig()
        with pytest.raises(AttributeError):
            cfg.delta = 12
