"""Unit tests for the dataset surrogates and the workload registry."""

import pytest

from repro.workloads.registry import DATASET_NAMES, SIZE_PRESETS, make_all_datasets, make_dataset
from repro.workloads.synthetic import (
    alibaba_cloud_workload,
    collision_workload,
    random_noise_workload,
)


class TestRegistry:
    def test_four_paper_datasets(self):
        assert DATASET_NAMES == ("alibaba", "rome", "porto", "sanfrancisco")

    def test_make_all(self):
        datasets = make_all_datasets("tiny")
        assert [ds.name for ds in datasets] == list(DATASET_NAMES)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("beijing")

    def test_unknown_size(self):
        with pytest.raises(KeyError):
            make_dataset("alibaba", "huge")

    def test_size_presets_cover_all_names(self):
        for size, counts in SIZE_PRESETS.items():
            for name in DATASET_NAMES:
                assert name in counts

    def test_caching_returns_same_object(self):
        assert make_dataset("alibaba", "tiny") is make_dataset("alibaba", "tiny")

    def test_path_counts_match_presets(self):
        ds = make_dataset("alibaba", "tiny")
        assert len(ds) == SIZE_PRESETS["tiny"]["alibaba"]


class TestSurrogateShapes:
    """The Table III shape constraints each surrogate must satisfy."""

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_paths_are_simple(self, name):
        for path in make_dataset(name, "tiny"):
            assert len(set(path)) == len(path), (name, path)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_minimum_length_three(self, name):
        assert min(len(p) for p in make_dataset(name, "tiny")) >= 3

    def test_alibaba_length_profile(self):
        stats = make_dataset("alibaba", "tiny").stats()
        assert 12 <= stats.avg_length <= 24       # paper: 17.20
        assert stats.max_length <= 30             # paper: 30

    def test_rome_is_longest_on_average(self):
        stats = {n: make_dataset(n, "tiny").stats() for n in DATASET_NAMES}
        assert stats["rome"].avg_length == max(s.avg_length for s in stats.values())

    def test_sanfrancisco_has_fewest_ids(self):
        # Table III's id ordering needs enough paths for the alibaba client
        # pool (which scales with path count) to outgrow SF's small grid, so
        # this comparison runs at the "small" preset.
        stats = {n: make_dataset(n, "small").stats() for n in DATASET_NAMES}
        assert stats["sanfrancisco"].id_number == min(s.id_number for s in stats.values())

    def test_determinism(self):
        a = alibaba_cloud_workload(50, seed=3)
        b = alibaba_cloud_workload(50, seed=3)
        assert list(a) == list(b)

    def test_seeds_differ(self):
        a = alibaba_cloud_workload(50, seed=1)
        b = alibaba_cloud_workload(50, seed=2)
        assert list(a) != list(b)


class TestAdversarialWorkloads:
    def test_collision_paths_embed_the_hot_subpath(self):
        hot = tuple(range(1000, 1008))
        for path in collision_workload(40, seed=0):
            joined = tuple(path)
            assert any(joined[i : i + 8] == hot for i in range(len(joined)))

    def test_collision_paths_are_simple(self):
        for path in collision_workload(40, seed=0):
            assert len(set(path)) == len(path)

    def test_noise_workload_is_simple_and_incompressible_shaped(self):
        ds = random_noise_workload(60, seed=0)
        for path in ds:
            assert len(set(path)) == len(path)
        # High id diversity: few repeated edges.
        edges = [e for p in ds for e in zip(p, p[1:])]
        assert len(set(edges)) > 0.9 * len(edges)
