"""Differential tests: parallel (de)compression vs the sequential ground truth.

Two properties, for ``processes ∈ {1, 2, 4}``:

1. **Byte-identical output.**  Compressed tokens (and decompressed paths)
   must equal the sequential path's exactly, independent of worker count
   and chunking.
2. **Metric conservation.**  With :mod:`repro.obs` active, the counters
   merged from per-worker registries must equal the sequential totals —
   probe work is a pure function of (path, table), so fan-out must neither
   lose nor double-count it.
"""

import pytest

from repro.core.compressor import compress_dataset, decompress_dataset
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.parallel import parallel_compress, parallel_decompress
from repro.obs import instrumented
from repro.workloads.registry import make_dataset

PROCESS_COUNTS = (1, 2, 4)

#: Counters that must be conserved across process fan-out.  Timers and
#: gauges are excluded by design: wall-clock is not additive across workers.
CONSERVED_COMPRESS = (
    "compress.paths",
    "compress.symbols_in",
    "compress.symbols_out",
    "matcher.probes",
    "matcher.hashed_vertices",
)
CONSERVED_DECOMPRESS = (
    "decompress.paths",
    "decompress.symbols_in",
    "decompress.symbols_out",
)


@pytest.fixture(scope="module")
def setup():
    dataset = make_dataset("alibaba", "tiny")
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0)).fit(dataset)
    paths = [tuple(p) for p in dataset]
    return paths, codec.table


class TestByteIdentical:
    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_compress_matches_sequential(self, setup, processes):
        paths, table = setup
        sequential = compress_dataset(paths, table)
        assert parallel_compress(paths, table, processes=processes,
                                 chunk_size=29) == sequential

    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    @pytest.mark.parametrize("backend", ("multilevel", "trie", "rolling"))
    def test_every_backend_matches_sequential(self, setup, processes, backend):
        paths, table = setup
        sequential = compress_dataset(paths, table)
        assert parallel_compress(paths, table, processes=processes,
                                 chunk_size=29, backend=backend) == sequential

    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_decompress_matches_sequential(self, setup, processes):
        paths, table = setup
        tokens = compress_dataset(paths, table)
        sequential = decompress_dataset(tokens, table)
        assert sequential == list(paths)
        assert parallel_decompress(tokens, table, processes=processes,
                                   chunk_size=31) == sequential


class TestMetricConservation:
    def _sequential_counters(self, paths, table, conserved, run):
        with instrumented() as obs:
            run(paths, table, 1)
        counters = obs.registry.counters()
        assert all(counters.get(name, 0) > 0 for name in conserved)
        return {name: counters[name] for name in conserved}

    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_compress_counters_equal_sequential(self, setup, processes):
        paths, table = setup

        def run(paths, table, n):
            parallel_compress(paths, table, processes=n, chunk_size=37)

        expected = self._sequential_counters(paths, table, CONSERVED_COMPRESS, run)
        with instrumented() as obs:
            parallel_compress(paths, table, processes=processes, chunk_size=37)
        counters = obs.registry.counters()
        assert {name: counters.get(name, 0) for name in CONSERVED_COMPRESS} == expected

    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_decompress_counters_equal_sequential(self, setup, processes):
        paths, table = setup
        tokens = compress_dataset(paths, table)

        def run(tokens, table, n):
            parallel_decompress(tokens, table, processes=n, chunk_size=41)

        expected = self._sequential_counters(tokens, table, CONSERVED_DECOMPRESS, run)
        with instrumented() as obs:
            parallel_decompress(tokens, table, processes=processes, chunk_size=41)
        counters = obs.registry.counters()
        assert {name: counters.get(name, 0) for name in CONSERVED_DECOMPRESS} == expected

    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_rolling_backend_counters_equal_single_process(self, setup, processes):
        # The batch kernel's probe accounting differs from the sequential
        # matcher's (it counts vectorized window tests), but it must still be
        # additive over path-aligned chunks: any process count and chunking
        # yields the same totals as one process running one big batch.
        paths, table = setup
        with instrumented() as obs:
            parallel_compress(paths, table, processes=1, backend="rolling")
        expected = {
            name: obs.registry.counters().get(name, 0) for name in CONSERVED_COMPRESS
        }
        assert all(expected.values())
        with instrumented() as obs:
            parallel_compress(paths, table, processes=processes, chunk_size=37,
                              backend="rolling")
        counters = obs.registry.counters()
        assert {name: counters.get(name, 0) for name in CONSERVED_COMPRESS} == expected

    def test_worker_timer_observations_cover_all_chunks(self, setup):
        paths, table = setup
        chunk_size = 23
        expected_chunks = (len(paths) + chunk_size - 1) // chunk_size
        with instrumented() as obs:
            parallel_compress(paths, table, processes=2, chunk_size=chunk_size)
        assert obs.registry.timer("compress.seconds").count == expected_chunks

    def test_uninstrumented_parallel_run_records_nothing(self, setup):
        paths, table = setup
        from repro.obs import get_active

        assert get_active() is None
        tokens = parallel_compress(paths, table, processes=2, chunk_size=37)
        assert tokens == compress_dataset(paths, table)
