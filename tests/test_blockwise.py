"""Unit tests for the block-wise generic compression strawman."""

import pytest

from repro.baselines.blockwise import BlockwiseZlibStore
from repro.core.errors import PathIdError
from repro.paths.dataset import PathDataset


@pytest.fixture()
def ds():
    return PathDataset([[i % 7, i % 5 + 10, i % 3 + 20, 30] for i in range(100)])


class TestRetrieval:
    def test_retrieve_each_path(self, ds):
        store = BlockwiseZlibStore(paths_per_block=16).compress_dataset(ds)
        for i, path in enumerate(ds):
            assert store.retrieve(i) == path

    def test_retrieve_all(self, ds):
        store = BlockwiseZlibStore(paths_per_block=16).compress_dataset(ds)
        assert store.retrieve_all() == list(ds)

    def test_unknown_id(self, ds):
        store = BlockwiseZlibStore().compress_dataset(ds)
        with pytest.raises(PathIdError):
            store.retrieve(len(ds))

    def test_one_path_per_block(self, ds):
        store = BlockwiseZlibStore(paths_per_block=1).compress_dataset(ds)
        assert store.retrieve(42) == ds[42]

    def test_varied_path_lengths(self):
        ds = PathDataset([[1], [2, 3], [4, 5, 6], [7, 8, 9, 10]])
        store = BlockwiseZlibStore(paths_per_block=3).compress_dataset(ds)
        assert store.retrieve_all() == list(ds)


class TestCompressionQuality:
    def test_bigger_blocks_compress_better(self, ds):
        """The paper's observation: per-path blocks destroy the ratio."""
        big = BlockwiseZlibStore(paths_per_block=64).compress_dataset(ds)
        tiny = BlockwiseZlibStore(paths_per_block=1).compress_dataset(ds)
        assert big.compression_ratio() > tiny.compression_ratio()

    def test_per_path_blocks_barely_compress(self, ds):
        tiny = BlockwiseZlibStore(paths_per_block=1).compress_dataset(ds)
        # zlib headers per 4-node path eat any gain.
        assert tiny.compression_ratio() < 1.5

    def test_raw_size_model(self, ds):
        store = BlockwiseZlibStore(paths_per_block=8).compress_dataset(ds)
        # 100 paths x (4 ids x 4 bytes + 4-byte marker)
        assert store.raw_size_bytes() == 100 * (16 + 4)


class TestConfig:
    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockwiseZlibStore(paths_per_block=0)

    def test_empty_dataset(self):
        store = BlockwiseZlibStore().compress_dataset(PathDataset([]))
        assert len(store) == 0
        assert store.retrieve_all() == []
        assert store.compression_ratio() == 0.0
