"""Unit tests for the compressed path store (per-path random access)."""

import pytest

from repro.core.config import OFFSConfig
from repro.core.errors import PathIdError
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.paths.dataset import PathDataset


@pytest.fixture()
def table():
    return SupernodeTable(100, [(1, 2, 3), (4, 5)])


@pytest.fixture()
def store(table):
    s = CompressedPathStore(table)
    s.extend([(1, 2, 3, 9), (4, 5, 6), (7, 8)])
    return s


class TestIngest:
    def test_append_returns_dense_ids(self, table):
        s = CompressedPathStore(table)
        assert s.append((1, 2, 3)) == 0
        assert s.append((7, 8)) == 1
        assert len(s) == 2

    def test_from_dataset(self, table):
        ds = PathDataset([[1, 2, 3], [4, 5]])
        s = CompressedPathStore.from_dataset(ds, table)
        assert len(s) == 2

    def test_from_codec_fits_and_ingests(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config)
        s = CompressedPathStore.from_codec(simple_dataset, codec)
        assert len(s) == len(simple_dataset)
        for i, path in enumerate(simple_dataset):
            assert s.retrieve(i) == path


class TestRetrieval:
    def test_retrieve_single(self, store):
        assert store.retrieve(0) == (1, 2, 3, 9)
        assert store.retrieve(2) == (7, 8)

    def test_retrieve_does_not_touch_other_paths(self, store):
        # Tokens stay compressed: the stored token for path 0 is shorter
        # than the original (supernode contraction happened).
        assert len(store.token(0)) < 4

    def test_retrieve_many(self, store):
        assert store.retrieve_many([2, 0]) == [(7, 8), (1, 2, 3, 9)]

    def test_retrieve_all(self, store):
        assert store.retrieve_all() == [(1, 2, 3, 9), (4, 5, 6), (7, 8)]

    def test_iter_matches_retrieve_all(self, store):
        assert list(store) == store.retrieve_all()

    def test_retrieve_fraction_deterministic(self, store):
        a = store.retrieve_fraction(0.5, seed=1)
        b = store.retrieve_fraction(0.5, seed=1)
        assert a == b
        assert len(a) == 2  # round(0.5 * 3) = 2

    def test_retrieve_fraction_bounds(self, store):
        with pytest.raises(ValueError):
            store.retrieve_fraction(0.0)

    def test_unknown_id_raises(self, store):
        with pytest.raises(PathIdError):
            store.retrieve(3)
        with pytest.raises(PathIdError):
            store.retrieve(-1)

    def test_retrieve_many_validates_all_ids_up_front(self, store):
        # Regression: a bad id anywhere in the batch must fail the whole
        # call before any path is decompressed — no partial side effects.
        from repro.obs import catalog
        from repro.obs.runtime import instrumented

        with instrumented() as obs:
            with pytest.raises(PathIdError):
                store.retrieve_many([0, 1, 99])
            assert obs.registry.counter(catalog.STORE_RETRIEVED_PATHS).value == 0

    def test_retrieve_many_bad_id_first_or_last(self, store):
        with pytest.raises(PathIdError):
            store.retrieve_many([99, 0, 1])
        with pytest.raises(PathIdError):
            store.retrieve_many([0, 1, -1])

    def test_retrieve_many_accepts_one_shot_iterators(self, store):
        # Validation must not consume the ids before retrieval.
        assert store.retrieve_many(iter([2, 0])) == [(7, 8), (1, 2, 3, 9)]


class TestRetrieveSlice:
    def test_matches_full_retrieve_slicing(self, store):
        for pid in range(len(store)):
            full = store.retrieve(pid)
            n = len(full)
            bounds = [None, 0, 1, 2, n - 1, n, n + 3, -1, -2, -n, -n - 3]
            for start in bounds:
                for stop in bounds:
                    assert store.retrieve_slice(pid, start, stop) == full[start:stop], (
                        pid,
                        start,
                        stop,
                    )

    def test_defaults_return_whole_path(self, store):
        assert store.retrieve_slice(0) == store.retrieve(0)

    def test_slice_inside_a_supernode(self, store):
        # Path 0 compresses (1, 2, 3) into one supernode; a window that
        # starts and ends mid-expansion must still be exact.
        assert store.retrieve_slice(0, 1, 3) == (2, 3)

    def test_unknown_id_raises(self, store):
        with pytest.raises(PathIdError):
            store.retrieve_slice(3, 0, 1)

    def test_expanded_length(self, store):
        for pid in range(len(store)):
            assert store.expanded_length(pid) == len(store.retrieve(pid))

    def test_slice_counts_metrics(self, store):
        from repro.obs import catalog
        from repro.obs.runtime import instrumented

        with instrumented() as obs:
            store.retrieve_slice(0, 0, 2)
            assert obs.registry.counter(catalog.STORE_RETRIEVED_SLICES).value == 1


class TestSizes:
    def test_compression_ratio_above_one_for_redundant_data(self, table):
        ds = PathDataset([[1, 2, 3, 4, 5]] * 20)
        s = CompressedPathStore.from_dataset(ds, table)
        assert s.compression_ratio() > 1.0

    def test_raw_size_matches_original(self, store):
        # 3 paths, 9 vertices, 4 bytes each + 3 length markers.
        assert store.raw_size_bytes() == 4 * (9 + 3)

    def test_compressed_size_includes_table(self, table):
        s = CompressedPathStore(table)
        assert s.compressed_size_bytes() > 0  # table alone costs bytes

    def test_symbol_count(self, store):
        assert store.compressed_symbol_count() == sum(len(t) for t in store.tokens())

    def test_empty_store_ratio_zero_safe(self, table):
        s = CompressedPathStore(table)
        assert s.compression_ratio() == 0.0
