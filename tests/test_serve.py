"""End-to-end integration tests for the repro.serve HTTP layer.

A real :class:`~repro.serve.PathServer` is started on an ephemeral port —
once with 1 worker and once with 2 — and every endpoint's response is held
value-identical (and, for ``/v1/retrieve``, byte-identical) to direct
:class:`~repro.core.mapped.MappedPathStore` / query-engine calls over the
same store file.  The fault-injection classes then drive malformed input
at the fleet and assert the structured 4xx/5xx error schema, with the
workers provably alive afterwards; a truncated archive must fail at
*startup* with a typed error, never as a mid-request 500.
"""

import json
import multiprocessing
import re
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from urllib.parse import urlencode

import pytest

from repro.core.errors import (
    BoundsError,
    CorruptDataError,
    InvalidInputError,
    PathIdError,
    StateError,
    TruncatedDataError,
)
from repro.core.mapped import MappedPathStore
from repro.core.serialize import dump_store_file
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.serve import PathServer, ServeConfig, check_store
from repro.serve.protocol import encode_body, error_body, status_for

from conftest import make_fd_leak_guard

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="repro.serve requires the fork start method (POSIX)",
)

# Forked workers, the shared listener and per-request sockets must all be
# gone when this module's fixtures tear down (the runtime twin of R008).
_fd_leak_guard = make_fd_leak_guard()

PATHS = [
    (1, 2, 3, 4, 5),
    (1, 2, 3, 9),
    (4, 5, 6),
    (7, 8),
    (42,),
    (1, 2, 3, 4, 5, 6),
    (9, 2, 3, 4),
    (2, 3),
]


def _build_store():
    table = SupernodeTable(100, [(1, 2, 3), (4, 5)])
    store = CompressedPathStore(table)
    store.extend(PATHS)
    return store


@pytest.fixture(scope="module")
def store_file(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "archive.rpc2")
    dump_store_file(_build_store(), path)
    return path


@pytest.fixture(scope="module", params=[1, 2], ids=["workers=1", "workers=2"])
def server(request, store_file):
    config = ServeConfig(store_file, port=0, workers=request.param)
    with PathServer(config) as srv:
        yield srv


@pytest.fixture(scope="module")
def direct(store_file):
    """The ground truth: direct library calls over the same file."""
    with MappedPathStore.open(store_file) as store:
        from repro.queries.retrieval import PathQueryEngine
        from repro.queries.subpath_search import SubpathSearcher

        engine = PathQueryEngine(store)
        searcher = SubpathSearcher(store, engine.index)
        yield store, engine, searcher


# -- tiny stdlib HTTP client -----------------------------------------------------


def _request(url, data=None):
    req = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def get(server, route, **params):
    url = server.address + route
    if params:
        url += "?" + urlencode(params)
    status, body = _request(url)
    return status, json.loads(body)


def get_raw(server, route, **params):
    url = server.address + route
    if params:
        url += "?" + urlencode(params)
    return _request(url)


def post(server, route, payload):
    status, body = _request(
        server.address + route, data=json.dumps(payload).encode("utf-8")
    )
    return status, json.loads(body)


# -- endpoint equivalence --------------------------------------------------------


class TestEndpointsMatchDirectCalls:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["paths"] == len(PATHS)

    def test_retrieve_every_path_byte_identical(self, server, direct):
        store, _, _ = direct
        for pid in range(len(store)):
            status, raw = get_raw(server, "/v1/retrieve", id=pid)
            assert status == 200
            expected = {"id": pid, "path": list(store.retrieve(pid))}
            assert raw == encode_body(expected)  # bytes, not just values

    def test_retrieve_slice(self, server, direct):
        store, _, _ = direct
        cases = [(0, 1, 3), (0, None, None), (1, 0, 2), (5, 2, -1), (3, -1, None)]
        for pid, start, stop in cases:
            params = {"id": pid}
            if start is not None:
                params["start"] = start
            if stop is not None:
                params["stop"] = stop
            status, body = get(server, "/v1/retrieve_slice", **params)
            assert status == 200
            assert body["path"] == list(store.retrieve_slice(pid, start, stop))

    def test_retrieve_many_get(self, server, direct):
        store, _, _ = direct
        status, body = get(server, "/v1/retrieve_many", ids="0,2,4")
        assert status == 200
        assert body["ids"] == [0, 2, 4]
        assert body["count"] == 3
        assert body["paths"] == [list(p) for p in store.retrieve_many([0, 2, 4])]

    def test_retrieve_many_post(self, server, direct):
        store, _, _ = direct
        ids = [5, 0, 1, 0]  # order and duplicates preserved
        status, body = post(server, "/v1/retrieve_many", {"ids": ids})
        assert status == 200
        assert body["ids"] == ids
        assert body["paths"] == [list(p) for p in store.retrieve_many(ids)]

    def test_retrieve_many_empty(self, server):
        status, body = post(server, "/v1/retrieve_many", {"ids": []})
        assert status == 200
        assert body == {"count": 0, "ids": [], "paths": []}

    def test_expanded_length(self, server, direct):
        store, _, _ = direct
        for pid in range(len(store)):
            status, body = get(server, "/v1/expanded_length", id=pid)
            assert status == 200
            assert body["length"] == store.expanded_length(pid)
            assert body["length"] == len(PATHS[pid])

    def test_paths_between(self, server, direct):
        _, engine, _ = direct
        for source, destination in [(1, 5), (1, 9), (4, 6), (42, 42), (7, 1)]:
            status, body = get(
                server, "/v1/paths_between", source=source, destination=destination
            )
            assert status == 200
            expected = engine.paths_between(source, destination)
            assert body["paths"] == [list(p) for p in expected]
            assert body["count"] == len(expected)

    def test_subpath_search_get_and_post(self, server, direct):
        store, _, searcher = direct
        for query in [(2, 3), (1, 2, 3), (4, 5), (999,), (3, 2)]:
            expected_ids = searcher.search_ids(tuple(query))
            expected_paths = [list(p) for p in store.retrieve_many(expected_ids)]
            status, body = get(
                server, "/v1/subpath_search", query=",".join(map(str, query))
            )
            assert status == 200
            assert body["ids"] == expected_ids
            assert body["paths"] == expected_paths
            status, body_post = post(
                server, "/v1/subpath_search", {"query": list(query)}
            )
            assert status == 200
            assert body_post == body

    def test_stats(self, server, store_file, direct):
        store, _, _ = direct
        status, body = get(server, "/v1/stats")
        assert status == 200
        assert body["name"] == store_file
        assert body["paths"] == len(store)
        assert body["table_entries"] == len(store.table)
        assert body["table_base_id"] == 100
        assert body["mapped_bytes"] == len(store._buf)
        assert 0 <= body["worker"]["index"] < server.config.workers

    def test_metrics_endpoint(self, server):
        get(server, "/v1/retrieve", id=0)  # guarantee at least one request
        status, body = get(server, "/metrics")
        assert status == 200
        counters = body["metrics"]["counters"]
        assert counters.get("serve.requests", 0) >= 1

    def test_trailing_slash_is_same_route(self, server, direct):
        store, _, _ = direct
        status, body = get(server, "/v1/retrieve/", id=3)
        assert status == 200
        assert body["path"] == list(store.retrieve(3))


# -- fault injection: the server answers 4xx and stays up ------------------------


class TestFaultInjection:
    def _assert_error(self, status, body, expected_status, expected_type):
        assert status == expected_status
        error = body["error"]
        assert error["type"] == expected_type
        assert error["status"] == expected_status
        assert error["message"]

    def test_unknown_path_id_is_404(self, server):
        status, body = get(server, "/v1/retrieve", id=999)
        self._assert_error(status, body, 404, "PathIdError")
        assert "999" in body["error"]["message"]

    def test_unknown_id_in_slice_and_length(self, server):
        for route in ("/v1/retrieve_slice", "/v1/expanded_length"):
            status, body = get(server, route, id=-1)
            self._assert_error(status, body, 404, "PathIdError")

    def test_unknown_id_in_batch(self, server):
        status, body = post(server, "/v1/retrieve_many", {"ids": [0, 999]})
        self._assert_error(status, body, 404, "PathIdError")

    def test_non_integer_parameter_is_400(self, server):
        status, body = get(server, "/v1/retrieve", id="zero")
        self._assert_error(status, body, 400, "InvalidInputError")

    def test_boolean_id_in_body_is_400(self, server):
        status, body = post(server, "/v1/retrieve_many", {"ids": [0, True]})
        self._assert_error(status, body, 400, "InvalidInputError")

    def test_missing_parameter_is_400(self, server):
        for route in ("/v1/retrieve", "/v1/retrieve_slice", "/v1/expanded_length"):
            status, body = get(server, route)
            self._assert_error(status, body, 400, "InvalidInputError")
        status, body = get(server, "/v1/paths_between", source=1)
        self._assert_error(status, body, 400, "InvalidInputError")

    def test_malformed_json_body_is_400(self, server):
        status, raw = _request(
            server.address + "/v1/retrieve_many", data=b"{not json"
        )
        body = json.loads(raw)
        self._assert_error(status, body, 400, "InvalidInputError")

    def test_non_object_json_body_is_400(self, server):
        status, raw = _request(server.address + "/v1/subpath_search", data=b"[1,2]")
        body = json.loads(raw)
        self._assert_error(status, body, 400, "InvalidInputError")

    def test_unknown_endpoint_is_404(self, server):
        status, body = get(server, "/v1/nope")
        self._assert_error(status, body, 404, "UnknownEndpointError")

    def test_post_to_get_only_route_is_405(self, server):
        status, raw = _request(server.address + "/v1/retrieve?id=0", data=b"{}")
        body = json.loads(raw)
        self._assert_error(status, body, 405, "MethodNotAllowedError")

    def test_bad_ids_type_is_400(self, server):
        status, body = post(server, "/v1/retrieve_many", {"ids": {"a": 1}})
        self._assert_error(status, body, 400, "InvalidInputError")

    def test_workers_survive_the_abuse(self, server):
        # Runs after the error cases above (same module-scoped server): no
        # malformed request may have killed a worker or wedged the fleet.
        assert server.workers_alive() == server.config.workers
        status, body = get(server, "/healthz")
        assert status == 200 and body["status"] == "ok"


# -- startup validation ----------------------------------------------------------


class TestStartupValidation:
    @pytest.fixture()
    def truncated_file(self, tmp_path, store_file):
        blob = open(store_file, "rb").read()
        path = str(tmp_path / "truncated.rpc2")
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        return path

    def test_truncated_store_fails_at_start(self, truncated_file):
        server = PathServer(ServeConfig(truncated_file))
        with pytest.raises((TruncatedDataError, CorruptDataError)):
            server.start()
        assert server._socket is None      # nothing bound
        assert server.workers_alive() == 0  # nothing forked

    def test_check_store_raises_typed_error(self, truncated_file):
        with pytest.raises((TruncatedDataError, CorruptDataError)):
            check_store(truncated_file)

    def test_empty_store_file_fails_with_offset(self, tmp_path):
        path = str(tmp_path / "empty.rpc2")
        open(path, "wb").close()
        with pytest.raises(TruncatedDataError) as excinfo:
            PathServer(ServeConfig(path)).start()
        assert error_body(excinfo.value)["error"]["byte_offset"] == 0

    def test_missing_store_file_fails(self, tmp_path):
        with pytest.raises(OSError):
            PathServer(ServeConfig(str(tmp_path / "absent.rpc2"))).start()

    def test_cli_serve_reports_truncated_store(self, truncated_file, capsys):
        from repro.cli import main

        assert main(["serve", "--store", truncated_file]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "\n" == err[err.index("\n") :]  # exactly one clean line

    def test_double_start_rejected(self, store_file):
        with PathServer(ServeConfig(store_file)) as server:
            with pytest.raises(StateError):
                server.start()

    def test_config_validation(self, store_file):
        with pytest.raises(InvalidInputError):
            ServeConfig(store_file, workers=0)
        with pytest.raises(InvalidInputError):
            ServeConfig(store_file, port=70000)


# -- protocol unit coverage ------------------------------------------------------


class TestProtocol:
    def test_status_mapping(self):
        assert status_for(PathIdError("x")) == 404
        assert status_for(InvalidInputError("x")) == 400
        assert status_for(BoundsError("x")) == 400
        assert status_for(CorruptDataError("x")) == 500
        # Truncation is a server-side fault even though it IS a BoundsError.
        assert status_for(TruncatedDataError("x")) == 500
        assert status_for(RuntimeError("x")) == 500

    def test_error_body_extracts_byte_offset(self):
        exc = TruncatedDataError("v2 store truncated at byte offset 1234")
        error = error_body(exc)["error"]
        assert error["type"] == "TruncatedDataError"
        assert error["status"] == 500
        assert error["byte_offset"] == 1234

    def test_error_body_without_offset(self):
        error = error_body(PathIdError("path id 7 not in store"))["error"]
        assert "byte_offset" not in error
        assert error["status"] == 404


# -- the CLI end to end ----------------------------------------------------------


class TestCliServe:
    def test_serve_announce_query_shutdown(self, store_file):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--store", store_file,
             "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"on (http://[\d.]+:\d+) with 2 worker", line)
            assert match, f"unexpected announce line: {line!r}"
            address = match.group(1)
            status, body = _request(address + "/healthz")
            assert status == 200
            assert json.loads(body)["paths"] == len(PATHS)
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=15)
            assert proc.returncode == 0
            assert "shutting down" in err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


# -- sharded manifests through the same server ------------------------------------


class TestShardedServe:
    """`repro serve` accepts an RPSM manifest; every endpoint answers
    exactly what the monolithic archive of the same paths would."""

    @pytest.fixture(scope="class")
    def sharded_file(self, tmp_path_factory):
        from repro.core.sharded import build_sharded_store

        store = _build_store()
        path = str(tmp_path_factory.mktemp("serve-sharded") / "archive.rpsm")
        build_sharded_store(PATHS, store.table, path, shards=3)
        return path

    @pytest.fixture(scope="class", params=[1, 2], ids=["workers=1", "workers=2"])
    def sharded_server(self, request, sharded_file):
        config = ServeConfig(sharded_file, port=0, workers=request.param)
        with PathServer(config) as srv:
            yield srv

    def test_check_store_validates_every_shard(self, sharded_file):
        assert check_store(sharded_file) == len(PATHS)

    def test_retrieve_endpoints_identical(self, sharded_server, direct):
        store, _, _ = direct
        for pid in range(len(PATHS)):
            status, payload = get(sharded_server, "/v1/retrieve", id=pid)
            assert status == 200
            assert tuple(payload["path"]) == store.retrieve(pid)
        status, payload = get(
            sharded_server, "/v1/retrieve_slice", id=0, start=1, stop=-1
        )
        assert status == 200
        assert tuple(payload["path"]) == store.retrieve_slice(0, 1, -1)
        status, payload = post(
            sharded_server, "/v1/retrieve_many", {"ids": [0, 7, 3, 7]}
        )
        assert status == 200
        assert [tuple(p) for p in payload["paths"]] == store.retrieve_many([0, 7, 3, 7])
        status, payload = get(sharded_server, "/v1/expanded_length", id=5)
        assert status == 200
        assert payload["length"] == store.expanded_length(5)

    def test_query_endpoints_identical(self, sharded_server, direct):
        _, engine, searcher = direct
        status, payload = get(
            sharded_server, "/v1/paths_between", source=1, destination=5
        )
        assert status == 200
        assert [tuple(p) for p in payload["paths"]] == engine.paths_between(1, 5)
        status, payload = post(sharded_server, "/v1/subpath_search", {"query": [2, 3]})
        assert status == 200
        assert payload["ids"] == searcher.search_ids((2, 3))
        assert [tuple(p) for p in payload["paths"]] == searcher.search((2, 3))

    def test_stats_reports_shard_shape(self, sharded_server):
        status, payload = get(sharded_server, "/v1/stats")
        assert status == 200
        assert payload["paths"] == len(PATHS)
        assert payload["shards"] == 3
        assert payload["partition"] == "range"
        assert payload["distinct_tables"] == 1
        assert payload["mapped_bytes"] > 0

    def test_unknown_id_is_structured_404(self, sharded_server):
        status, payload = get(sharded_server, "/v1/retrieve", id=999)
        assert status == 404
        assert payload["error"]["type"] == "PathIdError"
        assert sharded_server.workers_alive() == sharded_server.config.workers

    def test_corrupt_manifest_fails_at_startup(self, sharded_file, tmp_path):
        import shutil

        bad_dir = tmp_path / "bad"
        shutil.copytree(
            __import__("os").path.dirname(sharded_file), bad_dir
        )
        bad = str(bad_dir / "archive.rpsm")
        blob = bytearray(open(bad, "rb").read())
        blob[-1] ^= 0xFF
        with open(bad, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(CorruptDataError):
            PathServer(ServeConfig(bad)).start()
