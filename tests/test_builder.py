"""Unit tests for TConstruct* (Algorithm 5): merge, expansion, λ, finalize."""

import pytest

from repro.core.builder import TableBuilder, build_supernode_table
from repro.core.config import OFFSConfig
from repro.paths.dataset import PathDataset


def exhaustive(**overrides) -> OFFSConfig:
    base = dict(iterations=4, sample_exponent=0, capacity=10_000)
    base.update(overrides)
    return OFFSConfig(**base)


class TestInitialization:
    def test_all_edges_with_existence_weight(self):
        builder = TableBuilder(exhaustive())
        cands = builder.initialize([(1, 2, 3), (2, 3, 4)])
        # Edges: (1,2), (2,3), (3,4) — (2,3) occurs twice but existence
        # weight stays 1 ("the weight suggests existence", Example 2).
        assert dict(cands.items()) == {(1, 2): 1, (2, 3): 1, (3, 4): 1}

    def test_empty_paths(self):
        builder = TableBuilder(exhaustive())
        assert len(builder.initialize([])) == 0


class TestIterationCaps:
    def test_iteration_one_matches_only_pairs(self):
        """Example 2: 'the maximum size of matched supernodes is two' at it 1."""
        builder = TableBuilder(exhaustive())
        paths = [(1, 2, 3, 4)] * 3
        cands = builder.initialize(paths)
        # Plant a longer candidate; iteration 1's cap of 2 must ignore it.
        cands.add((1, 2, 3, 4), 1)
        stats = builder.run_iteration(cands, paths, iteration=1, lam=10_000)
        assert stats.cap == 2
        # The long candidate was never matched, only generated-into at most;
        # pair matches drove the counting.
        assert cands.weight((1, 2)) >= 3

    def test_cap_doubles_then_clamps_at_delta(self):
        builder = TableBuilder(exhaustive(delta=8))
        paths = [(1, 2, 3)]
        cands = builder.initialize(paths)
        caps = [
            builder.run_iteration(cands, paths, iteration=it, lam=10_000).cap
            for it in (1, 2, 3, 4, 5)
        ]
        assert caps == [2, 4, 8, 8, 8]


class TestMergeAndExpansion:
    def test_merge_concatenates_adjacent_matches(self):
        builder = TableBuilder(exhaustive())
        paths = [(1, 2, 3, 4)] * 2
        cands = builder.initialize(paths)
        builder.run_iteration(cands, paths, 1, 10_000)
        # Matches (1,2) then (3,4) -> merge (1,2,3,4).
        assert (1, 2, 3, 4) in cands

    def test_expansion_adds_next_vertex(self):
        builder = TableBuilder(exhaustive())
        paths = [(1, 2, 3, 4)] * 2
        cands = builder.initialize(paths)
        builder.run_iteration(cands, paths, 1, 10_000)
        # Expansion of pre=(1,2) with P[pos]=3 -> (1,2,3).
        assert (1, 2, 3) in cands

    def test_merge_truncated_to_delta(self):
        builder = TableBuilder(exhaustive(delta=4, alpha=3))
        # After iteration 2 matches (1,2,3,4) and (5,6,7,8) the merge must be
        # truncated: (1,2,3,4) + nothing.  Nothing longer than 4 may appear.
        paths = [(1, 2, 3, 4, 5, 6, 7, 8)] * 3
        cands = builder.initialize(paths)
        for it in (1, 2, 3):
            builder.run_iteration(cands, paths, it, 10_000)
        assert all(len(seq) <= 4 for seq, _ in cands.items())

    def test_no_expansion_when_match_is_single_vertex(self):
        builder = TableBuilder(exhaustive())
        # Path (1,2,9): match (1,2), then 9 alone.  The merge produces
        # (1,2,9); expansion must not double-add it.
        paths = [(1, 2, 9)] * 2
        cands = builder.initialize(paths)
        builder.run_iteration(cands, paths, 1, 10_000)
        # Generated once per path by merge only => weight 2, not 4.
        assert cands.weight((1, 2, 9)) == 2


class TestWeights:
    def test_weights_reset_each_iteration(self):
        """Table II: {v13,v21} shows 3 after both iterations, not 6.

        A length-2 path cannot be shadowed by merges, so its edge must show
        the same practical count after every iteration rather than
        accumulating across them.
        """
        builder = TableBuilder(exhaustive())
        paths = [(1, 2)] * 3
        cands = builder.initialize(paths)
        builder.run_iteration(cands, paths, 1, 10_000)
        w1 = cands.weight((1, 2))
        builder.run_iteration(cands, paths, 2, 10_000)
        w2 = cands.weight((1, 2))
        assert w1 == w2 == 3

    def test_practical_not_gross_counting(self):
        """A candidate covered by a longer match scores zero (§IV-A)."""
        builder = TableBuilder(exhaustive())
        paths = [(1, 2, 3, 4)] * 4
        cands = builder.initialize(paths)
        builder.run_iteration(cands, paths, 1, 10_000)  # creates (1,2,3,4)
        builder.run_iteration(cands, paths, 2, 10_000)
        # (1,2,3,4) now wins every match; the shadowed pair (2,3) gets no
        # practical counts even though its gross frequency is 4.
        assert cands.weight((1, 2, 3, 4)) == 4
        assert cands.weight((2, 3)) == 0


class TestFinalization:
    def test_drops_weight_one_candidates(self):
        builder = TableBuilder(exhaustive())
        cands = builder.initialize([(1, 2, 3)])
        cands.set_weight((1, 2), 5)
        cands.set_weight((2, 3), 1)
        table, dropped = builder.finalize(cands, base_id=100)
        assert (1, 2) in table
        assert (2, 3) not in table
        assert dropped == 1

    def test_best_candidates_get_smallest_ids(self):
        builder = TableBuilder(exhaustive())
        cands = builder.initialize([(1, 2, 3)])
        cands.set_weight((1, 2), 2)
        cands.set_weight((2, 3), 50)
        table, _ = builder.finalize(cands, base_id=100)
        assert table.expand(100) == (2, 3)

    def test_min_final_weight_configurable(self):
        builder = TableBuilder(exhaustive(min_final_weight=3))
        cands = builder.initialize([(1, 2, 3)])
        cands.set_weight((1, 2), 2)
        table, _ = builder.finalize(cands, base_id=100)
        assert len(table) == 0


class TestBuild:
    def test_base_id_above_all_vertices(self):
        ds = PathDataset([[5, 900, 7, 900 - 1]])
        table, _ = TableBuilder(exhaustive()).build(ds)
        assert table.base_id == 901

    def test_explicit_base_id(self):
        ds = PathDataset([[1, 2, 3]])
        table, _ = TableBuilder(exhaustive()).build(ds, base_id=10_000)
        assert table.base_id == 10_000

    def test_sampling_stride(self):
        ds = PathDataset([[1, 2, 3]] * 8)
        builder = TableBuilder(exhaustive(sample_exponent=2))
        _, report = builder.build(ds)
        assert report.sampled_paths == 2

    def test_lambda_capacity_bounds_candidates(self):
        ds = PathDataset([[i, i + 1, i + 2] for i in range(0, 300, 3)])
        cfg = exhaustive(capacity=5)
        table, report = TableBuilder(cfg).build(ds)
        assert report.lambda_capacity == 5
        assert len(table) <= 5

    def test_zero_iterations_yields_frequent_edges(self):
        # Greedy matching from position 0 pairs (1,2) and leaves 3 single,
        # so only the practically-matchable edge survives.
        ds = PathDataset([[1, 2, 3]] * 5)
        cfg = exhaustive(iterations=0)
        table, report = TableBuilder(cfg).build(ds)
        assert set(table.subpaths) == {(1, 2)}

    def test_report_counts_iterations(self):
        ds = PathDataset([[1, 2, 3, 4]] * 4)
        _, report = TableBuilder(exhaustive(iterations=3)).build(ds)
        assert [s.iteration for s in report.iterations] == [1, 2, 3]
        assert report.finalized_entries >= 1
        assert "table" in report.summary()

    def test_convenience_wrapper(self):
        ds = PathDataset([[1, 2, 3, 4]] * 4)
        table = build_supernode_table(ds, exhaustive())
        assert (1, 2, 3, 4) in table

    def test_fully_repeated_path_becomes_one_supernode(self):
        """The hand-checkable end-to-end case: N copies of one path of
        length 6 must yield the full path as a supernode."""
        ds = PathDataset([[1, 2, 3, 4, 5, 6]] * 10)
        table = build_supernode_table(ds, exhaustive())
        assert (1, 2, 3, 4, 5, 6) in table

    def test_empty_dataset(self):
        table, report = TableBuilder(exhaustive()).build(PathDataset([]))
        assert len(table) == 0
        assert report.sampled_paths == 0
