"""Unit tests for the flat-corpus layout (:mod:`repro.core.flatcorpus`)."""

import pytest

from repro.core.flatcorpus import FlatCorpus, as_flat_corpus
from repro.paths.dataset import PathDataset

PATHS = [(1, 2, 3), (4, 5), (), (6,), (7, 8, 9, 10)]


@pytest.fixture()
def corpus():
    return FlatCorpus.from_paths(PATHS, name="t")


class TestConstruction:
    def test_from_paths_round_trips(self, corpus):
        assert corpus.to_paths() == list(PATHS)

    def test_len_and_total_symbols(self, corpus):
        assert len(corpus) == len(PATHS)
        assert corpus.total_symbols == sum(len(p) for p in PATHS)

    def test_empty(self):
        empty = FlatCorpus.from_paths([])
        assert len(empty) == 0
        assert empty.total_symbols == 0
        assert empty.to_paths() == []
        assert empty.max_vertex() == -1

    def test_bad_offsets_rejected(self):
        from array import array

        with pytest.raises(ValueError):
            FlatCorpus(array("q", [1, 2]), array("q", [0, 1]))
        with pytest.raises(ValueError):
            FlatCorpus(array("q", [1, 2]), array("q", [1, 2]))
        with pytest.raises(ValueError):
            FlatCorpus(array("q", [1, 2]), array("q", []))

    def test_as_flat_corpus_passthrough(self, corpus):
        assert as_flat_corpus(corpus) is corpus

    def test_as_flat_corpus_takes_dataset_name(self):
        ds = PathDataset(PATHS, name="alpha")
        assert as_flat_corpus(ds).name == "alpha"

    def test_dataset_to_flat(self):
        ds = PathDataset(PATHS, name="alpha")
        flat = ds.to_flat()
        assert isinstance(flat, FlatCorpus)
        assert flat.to_paths() == list(ds)

    def test_to_dataset_round_trip(self, corpus):
        ds = corpus.to_dataset()
        assert list(ds) == list(PATHS)
        assert ds.name == "t"


class TestAccessors:
    def test_path_and_getitem(self, corpus):
        for i, p in enumerate(PATHS):
            assert corpus.path(i) == p
            assert corpus[i] == p

    def test_negative_index(self, corpus):
        assert corpus[-1] == PATHS[-1]

    def test_out_of_range(self, corpus):
        with pytest.raises(IndexError):
            corpus.path(len(PATHS))
        with pytest.raises(IndexError):
            corpus.path(-len(PATHS) - 1)

    def test_iter_yields_tuples(self, corpus):
        out = list(corpus)
        assert out == list(PATHS)
        assert all(isinstance(p, tuple) for p in out)

    def test_view_is_zero_copy(self, corpus):
        v = corpus.view(0)
        assert isinstance(v, memoryview)
        assert tuple(v) == PATHS[0]

    def test_lengths(self, corpus):
        assert corpus.lengths() == [len(p) for p in PATHS]

    def test_max_vertex(self, corpus):
        assert corpus.max_vertex() == 10

    def test_as_numpy_agrees_when_available(self, corpus):
        arrays = corpus.as_numpy()
        if arrays is None:
            pytest.skip("numpy unavailable")
        buf, offs = arrays
        assert buf.tolist() == [v for p in PATHS for v in p]
        assert offs[0] == 0 and offs[-1] == corpus.total_symbols


class TestShipping:
    def test_shipping_round_trip(self, corpus):
        payload = corpus.to_shipping()
        assert isinstance(payload[0], bytes) and isinstance(payload[1], bytes)
        back = FlatCorpus.from_shipping(payload, name="t")
        assert back.to_paths() == corpus.to_paths()

    def test_chunk_shipping_round_trip(self, corpus):
        chunk = corpus.chunk(1, 4)
        back = FlatCorpus.from_shipping(chunk.to_shipping())
        assert back.to_paths() == list(PATHS[1:4])


class TestChunking:
    def test_chunk_is_rebased(self, corpus):
        chunk = corpus.chunk(1, 4)
        assert chunk.offsets[0] == 0
        assert chunk.to_paths() == list(PATHS[1:4])

    def test_chunk_clamps(self, corpus):
        assert corpus.chunk(-5, 99).to_paths() == list(PATHS)
        assert corpus.chunk(3, 2).to_paths() == []

    def test_chunks_cover_everything_in_order(self, corpus):
        rejoined = [p for c in corpus.chunks(2) for p in c]
        assert rejoined == list(PATHS)

    def test_chunks_bad_size(self, corpus):
        with pytest.raises(ValueError):
            list(corpus.chunks(0))

    def test_every_matches_list_stride(self, corpus):
        assert corpus.every(2).to_paths() == list(PATHS[::2])
        assert corpus.every(1) is corpus

    def test_every_bad_stride(self, corpus):
        with pytest.raises(ValueError):
            corpus.every(0)
