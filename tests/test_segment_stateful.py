"""Stateful property testing of the segmented archive.

Random interleavings of rotations, appends, retrievals and
serialize/reload, checked against a flat-list model — global path ids must
stay stable across segment boundaries and reload.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.config import OFFSConfig
from repro.core.segment import SegmentedArchive

CFG = OFFSConfig(iterations=2, sample_exponent=0, capacity=64)

path_strategy = st.lists(
    st.integers(min_value=0, max_value=60), min_size=2, max_size=8
).map(tuple)


class SegmentMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.archive = SegmentedArchive(config=CFG, base_id=1000)
        self.archive.start_segment([(1, 2, 3)])
        self.model = []

    @rule(path=path_strategy)
    def append(self, path):
        gid = self.archive.append(path)
        self.model.append(path)
        assert gid == len(self.model) - 1

    @rule(training=st.lists(path_strategy, min_size=1, max_size=5))
    def rotate(self, training):
        self.archive.rotate(training)

    @rule(data=st.data())
    def retrieve(self, data):
        if not self.model:
            return
        gid = data.draw(st.integers(0, len(self.model) - 1))
        assert self.archive.retrieve(gid) == self.model[gid]

    @rule(vertex=st.integers(0, 60))
    def case1_agrees(self, vertex):
        expected = [i for i, p in enumerate(self.model) if vertex in p]
        assert self.archive.paths_containing(vertex) == expected

    @rule()
    def serialize_roundtrip(self):
        restored = SegmentedArchive.loads(self.archive.dumps(), config=CFG)
        assert restored.retrieve_all() == self.model
        assert restored.segment_count == self.archive.segment_count

    @invariant()
    def sizes_agree(self):
        assert len(self.archive) == len(self.model)


SegmentMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)
TestSegmentStateful = SegmentMachine.TestCase
