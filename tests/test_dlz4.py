"""Unit tests for the Dlz4 baseline (both byte-level backends)."""

import pytest

from repro.baselines.dlz4 import Dlz4Codec, compress_paths_dlz4
from repro.core.errors import NotFittedError
from repro.paths.dataset import PathDataset


@pytest.fixture()
def ds():
    # Redundant enough for the dictionary to matter.
    return PathDataset([[1, 2, 3, 4, 5, 6, 7, 8], [9, 1, 2, 3, 4, 5, 6, 7]] * 40)


@pytest.mark.parametrize("backend", ["zlib", "lz77"])
class TestBackends:
    def test_roundtrip(self, ds, backend):
        codec = Dlz4Codec(backend=backend, sample_exponent=0).fit(ds)
        for path in ds:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_tokens_are_bytes(self, ds, backend):
        codec = Dlz4Codec(backend=backend, sample_exponent=0).fit(ds)
        assert isinstance(codec.compress_path(ds[0]), bytes)

    def test_blocks_are_independent(self, ds, backend):
        # Decompressing token N must not need tokens 0..N-1 (the paper's
        # per-path stream refresh).
        codec = Dlz4Codec(backend=backend, sample_exponent=0).fit(ds)
        tokens = codec.compress_dataset(ds)
        assert codec.decompress_path(tokens[-1]) == ds[len(ds) - 1]

    def test_rule_is_dictionary_size(self, ds, backend):
        codec = Dlz4Codec(backend=backend, sample_exponent=0).fit(ds)
        assert codec.rule_size_bytes() == len(codec.dictionary)

    def test_unfitted_refuses(self, ds, backend):
        codec = Dlz4Codec(backend=backend)
        with pytest.raises(NotFittedError):
            codec.compress_path((1, 2, 3))


class TestDictionaryEffect:
    def test_dictionary_improves_small_block_compression(self, ds):
        with_dict = Dlz4Codec(backend="zlib", sample_exponent=0).fit(ds)
        no_dict = Dlz4Codec(backend="zlib", dict_size=0, sample_exponent=0).fit(ds)
        path = ds[0]
        assert len(with_dict.compress_path(path)) < len(no_dict.compress_path(path))

    def test_compressed_size_accounts_framing(self, ds):
        codec = Dlz4Codec(sample_exponent=0).fit(ds)
        token = codec.compress_path(ds[0])
        assert codec.compressed_size_bytes(token) == len(token) + 4


class TestConfig:
    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            Dlz4Codec(backend="zstd")

    def test_helper_returns_codec_and_tokens(self, ds):
        codec, tokens = compress_paths_dlz4(ds, sample_exponent=0)
        assert len(tokens) == len(ds)
        assert codec.decompress_path(tokens[0]) == ds[0]

    def test_sampling_controls_training_set(self, ds):
        # With an enormous stride the dictionary trains on one path only;
        # compression must still round-trip.
        codec = Dlz4Codec(sample_exponent=10).fit(ds)
        for path in list(ds)[:5]:
            assert codec.decompress_path(codec.compress_path(path)) == path
