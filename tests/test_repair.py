"""Unit and property tests for the Re-Pair grammar comparator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.repair import RePairCodec, _replace_pair
from repro.core.errors import NotFittedError, TableError
from repro.paths.dataset import PathDataset


class TestReplacePair:
    def test_simple(self):
        assert _replace_pair([1, 2, 3, 1, 2], (1, 2), 9) == [9, 3, 9]

    def test_non_overlapping_left_to_right(self):
        # aaa with pair (a,a): first two merge, third stays.
        assert _replace_pair([5, 5, 5], (5, 5), 9) == [9, 5]

    def test_no_occurrence(self):
        assert _replace_pair([1, 2, 3], (7, 8), 9) == [1, 2, 3]

    def test_empty(self):
        assert _replace_pair([], (1, 2), 9) == []


class TestTraining:
    def test_most_frequent_pair_becomes_first_rule(self):
        ds = PathDataset([[1, 2, 3]] * 5 + [[1, 2, 4]] * 3)
        codec = RePairCodec().fit(ds)
        assert codec.rules[0] == (1, 2)

    def test_hierarchy_emerges(self):
        # A length-4 repeat becomes pair-of-pairs.
        ds = PathDataset([[1, 2, 3, 4]] * 6)
        codec = RePairCodec().fit(ds)
        assert codec.max_expansion_depth() >= 2
        assert len(codec.compress_path((1, 2, 3, 4))) == 1

    def test_max_rules_cap(self):
        ds = PathDataset([[i, i + 1, i + 2] for i in range(0, 60, 3)] * 3)
        codec = RePairCodec(max_rules=5).fit(ds)
        assert len(codec.rules) <= 5

    def test_stops_below_min_frequency(self):
        ds = PathDataset([[1, 2], [3, 4], [5, 6]])  # every pair unique
        codec = RePairCodec().fit(ds)
        assert codec.rules == []

    def test_deterministic(self):
        ds = PathDataset([[1, 2, 3, 4, 5]] * 4 + [[2, 3, 4]] * 4)
        a = RePairCodec().fit(ds)
        b = RePairCodec().fit(ds)
        assert a.rules == b.rules

    def test_validation(self):
        with pytest.raises(ValueError):
            RePairCodec(max_rules=0)
        with pytest.raises(ValueError):
            RePairCodec(min_frequency=1)

    def test_unfitted_refuses(self):
        with pytest.raises(NotFittedError):
            RePairCodec().compress_path((1, 2))


class TestRoundtrip:
    @pytest.fixture()
    def codec(self):
        ds = PathDataset([[1, 2, 3, 4, 5, 6]] * 8 + [[9, 2, 3, 4, 8]] * 5)
        return RePairCodec().fit(ds)

    def test_training_paths(self, codec):
        for path in ((1, 2, 3, 4, 5, 6), (9, 2, 3, 4, 8)):
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_unseen_path(self, codec):
        unseen = (6, 5, 4, 3, 2, 1)
        assert codec.decompress_path(codec.compress_path(unseen)) == unseen

    def test_id_collision_detected(self, codec):
        with pytest.raises(TableError, match="collides"):
            codec.compress_path((codec.base_id,))

    def test_explicit_base_id(self):
        ds = PathDataset([[1, 2, 3]] * 4)
        codec = RePairCodec(base_id=1000).fit(ds)
        high = (999, 1, 2, 3)
        assert codec.decompress_path(codec.compress_path(high)) == high

    def test_rule_sizes(self, codec):
        assert codec.rule_size_bytes() > 0
        token = codec.compress_path((1, 2, 3, 4, 5, 6))
        assert codec.compressed_size_bytes(token) > 0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 30), min_size=1, max_size=15),
        min_size=1, max_size=20,
    )
)
def test_repair_roundtrip_property(paths):
    ds = PathDataset(paths)
    codec = RePairCodec(max_rules=64).fit(ds)
    for path in ds:
        assert codec.decompress_path(codec.compress_path(path)) == path


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.lists(st.integers(0, 20), min_size=2, max_size=10), min_size=1, max_size=10),
    st.lists(st.integers(0, 20), min_size=1, max_size=12),
)
def test_repair_roundtrips_unseen_paths(training, unseen):
    codec = RePairCodec(max_rules=32, base_id=21).fit(PathDataset(training))
    assert codec.decompress_path(codec.compress_path(tuple(unseen))) == tuple(unseen)
