"""Unit tests for the hybrid top-down refinement (§IV-D optimization (1))."""

import pytest

from repro.core.builder import TableBuilder
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.topdown import TopDownRefiner
from repro.paths.dataset import PathDataset


def unique_affix_dataset(count: int = 30):
    """Unique paths sharing a hot interior — bottom-up's worst case."""
    hot = [10, 11, 12, 13, 14, 15]
    return PathDataset([[100 + i, *hot, 200 + i] for i in range(count)])


class TestCutOnce:
    def test_cuts_the_rarer_end(self):
        refiner = TopDownRefiner()
        edges = {(1, 2): 10, (3, 4): 1}
        # Tail edge (3,4) is rarer -> drop the last vertex.
        assert refiner.cut_once((1, 2, 3, 4), edges) == (1, 2, 3)

    def test_cuts_head_on_tie(self):
        refiner = TopDownRefiner()
        edges = {(1, 2): 5, (3, 4): 5}
        assert refiner.cut_once((1, 2, 3, 4), edges) == (2, 3, 4)

    def test_unknown_edges_count_zero(self):
        refiner = TopDownRefiner()
        assert refiner.cut_once((9, 8, 7), {(8, 7): 3}) == (8, 7)

    def test_edge_frequencies(self):
        counts = TopDownRefiner.edge_frequencies([(1, 2, 3), (2, 3)])
        assert counts == {(1, 2): 1, (2, 3): 2}

    def test_min_length_validated(self):
        with pytest.raises(ValueError):
            TopDownRefiner(min_length=1)


class TestRefinement:
    def test_rescues_degenerate_workload(self):
        """Bottom-up alone finalizes empty; the hybrid recovers the core."""
        ds = unique_affix_dataset()
        plain = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=0)).fit(ds)
        hybrid = OFFSCodec(
            OFFSConfig(iterations=4, sample_exponent=0, topdown_rounds=3)
        ).fit(ds)
        assert len(plain.table) == 0
        assert len(hybrid.table) >= 1
        # Every surviving entry is a fragment of the hot interior.
        hot = tuple(range(10, 16))
        for subpath in hybrid.table.subpaths:
            assert any(hot[i : i + len(subpath)] == subpath for i in range(len(hot)))

    def test_hybrid_compresses_strictly_better_here(self):
        ds = unique_affix_dataset()
        plain = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=0)).fit(ds)
        hybrid = OFFSCodec(
            OFFSConfig(iterations=4, sample_exponent=0, topdown_rounds=3)
        ).fit(ds)
        path = tuple(ds[0])
        assert len(hybrid.compress_path(path)) < len(plain.compress_path(path))

    def test_roundtrip_still_lossless(self):
        ds = unique_affix_dataset()
        codec = OFFSCodec(
            OFFSConfig(iterations=4, sample_exponent=0, topdown_rounds=2)
        ).fit(ds)
        for path in ds:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_report_records_trims(self):
        ds = unique_affix_dataset()
        codec = OFFSCodec(
            OFFSConfig(iterations=4, sample_exponent=0, topdown_rounds=3)
        ).fit(ds)
        assert codec.build_report.topdown_trims
        assert all(t > 0 for t in codec.build_report.topdown_trims)

    def test_noop_when_nothing_weak(self):
        # Fully repeated data: all candidates are strong; refine exits early.
        ds = PathDataset([[1, 2, 3, 4]] * 10)
        builder = TableBuilder(OFFSConfig(iterations=3, sample_exponent=0))
        cands = builder.initialize(list(ds))
        for it in (1, 2, 3):
            builder.run_iteration(cands, list(ds), it, 10_000)
        before = dict(cands.items())
        strong_before = {seq for seq, w in before.items() if w >= 2}
        TopDownRefiner().refine(cands, list(ds), builder, 10_000, rounds=2)
        strong_after = {seq for seq, w in cands.items() if w >= 2}
        assert strong_before == strong_after

    def test_zero_rounds_is_off(self):
        ds = unique_affix_dataset()
        codec = OFFSCodec(
            OFFSConfig(iterations=4, sample_exponent=0, topdown_rounds=0)
        ).fit(ds)
        assert codec.build_report.topdown_trims == []

    def test_negative_rounds_rejected(self):
        with pytest.raises(Exception):
            OFFSConfig(topdown_rounds=-1)
