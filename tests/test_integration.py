"""End-to-end integration tests across subsystem boundaries.

These walk the full production story: raw recorded walks → preprocessing →
table construction → compressed store → retrieval queries → serialization →
reload — asserting losslessness and consistency at every joint.
"""

import random

import pytest

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.serialize import dumps_store, loads_store
from repro.core.store import CompressedPathStore
from repro.graphs.road import RoadNetwork
from repro.graphs.topology import CloudTopology
from repro.graphs.trajectory import TrajectoryRecorder
from repro.paths.preprocess import assign_new_ids, group_by_terminals, preprocess_paths
from repro.queries.retrieval import PathQueryEngine


class TestTaxiPipeline:
    """Raw GPS → grid snapping → repair → compression → retrieval."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        network = RoadNetwork(width=20, height=20, hotspots=8, seed=2)
        recorder = TrajectoryRecorder(network)
        raw_walks = recorder.record_dataset(60, seed=5)
        dataset, report = preprocess_paths(raw_walks, name="taxi")
        codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
        store = CompressedPathStore.from_codec(dataset, codec)
        return raw_walks, dataset, report, store

    def test_preprocessing_repaired_everything(self, pipeline):
        _, dataset, report, _ = pipeline
        assert report.input_paths == 60
        assert len(dataset) == report.output_paths
        for path in dataset:
            assert len(set(path)) == len(path)

    def test_store_round_trips_the_cleaned_data(self, pipeline):
        _, dataset, _, store = pipeline
        assert store.retrieve_all() == list(dataset)

    def test_compression_actually_helps(self, pipeline):
        _, _, _, store = pipeline
        assert store.compression_ratio() > 1.2

    def test_serialization_survives(self, pipeline):
        _, dataset, _, store = pipeline
        restored = loads_store(dumps_store(store))
        assert restored.retrieve_all() == list(dataset)
        # The restored store keeps serving single-path retrievals.
        assert restored.retrieve(3) == dataset[3]


class TestCloudMonitoringPipeline:
    """IP-hop logs → id assignment → compression → Case 1/2 queries."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        topology = CloudTopology(clients=120, seed=3)
        paths = topology.generate_paths(250, seed=7)
        # Pretend the log carried string labels; re-id them densely.
        labelled = [[f"ip-{v}" for v in p] for p in paths]
        relabelled, mapping = assign_new_ids(labelled)
        dataset, _ = preprocess_paths(relabelled, name="cloud")
        codec = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=0))
        store = CompressedPathStore.from_codec(dataset, codec)
        return dataset, store, PathQueryEngine(store), mapping

    def test_id_mapping_is_dense(self, pipeline):
        dataset, _, _, mapping = pipeline
        assert set(mapping.values()) == set(range(len(mapping)))

    def test_case1_affected_nodes(self, pipeline):
        dataset, _, engine, _ = pipeline
        issue = dataset[0][2]  # some middle-tier machine
        affected = engine.affected_vertices(issue)
        brute = set()
        for p in dataset:
            if issue in p:
                brute.update(p)
        brute.discard(issue)
        assert affected == brute
        assert affected  # a middle-tier machine always shares paths

    def test_case2_terminal_pair(self, pipeline):
        dataset, _, engine, _ = pipeline
        src, dst = dataset[5][0], dataset[5][-1]
        results = engine.paths_between(src, dst)
        assert dataset[5] in results
        for p in results:
            assert p[0] == src and p[-1] == dst

    def test_group_sets_compress_independently(self, pipeline):
        dataset, _, _, _ = pipeline
        groups = group_by_terminals(dataset)
        # Compress one group on its own — the paper's "group set" usage.
        key = max(groups, key=lambda k: len(groups[k]))
        codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
        store = CompressedPathStore.from_codec(groups[key], codec)
        assert store.retrieve_all() == list(groups[key])


class TestIncrementalIngest:
    def test_appends_after_fit_are_retrievable(self):
        topology = CloudTopology(clients=60, seed=9)
        warmup = topology.generate_paths(150, seed=1)
        codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
        from repro.paths.dataset import PathDataset

        store = CompressedPathStore.from_codec(PathDataset(warmup), codec)
        late = topology.generate_paths(30, seed=2)
        ids = store.extend(late)
        for pid, path in zip(ids, late):
            assert store.retrieve(pid) == path

    def test_mixed_workload_roundtrip(self):
        rng = random.Random(0)
        topology = CloudTopology(clients=50, seed=4)
        network = RoadNetwork(width=10, height=10, hotspots=5, seed=4)
        from repro.paths.dataset import PathDataset

        mixed = topology.generate_paths(80, seed=3) + [
            network.sample_trip(rng) for _ in range(40)
        ]
        dataset = PathDataset(mixed, name="mixed")
        codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0), base_id=20_000)
        store = CompressedPathStore.from_codec(dataset, codec)
        assert store.retrieve_all() == list(dataset)
