"""Unit and property tests for subpath search over compressed archives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.queries.subpath_search import SubpathSearcher, token_contains_subpath
from repro.workloads.registry import make_dataset


def brute_force_ids(dataset, query):
    q = tuple(query)
    hits = []
    for i, path in enumerate(dataset):
        if any(tuple(path[j : j + len(q)]) == q for j in range(len(path) - len(q) + 1)):
            hits.append(i)
    return hits


@pytest.fixture(scope="module")
def setup():
    dataset = make_dataset("sanfrancisco", "tiny")
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
    store = CompressedPathStore.from_codec(dataset, codec)
    return dataset, store, SubpathSearcher(store)


class TestTokenMatching:
    def test_match_inside_supernode(self, setup):
        dataset, store, _ = setup
        table = store.table
        # Any table entry's interior pair must be found inside its own use.
        sid, subpath = next(iter(table))
        token = (sid,)
        assert token_contains_subpath(token, table, subpath[1:3])

    def test_match_across_supernode_boundary(self, setup):
        _, store, _ = setup
        table = store.table
        # Find a real token with a supernode followed by anything.
        for token in store.tokens():
            for i, symbol in enumerate(token[:-1]):
                if symbol >= table.base_id:
                    tail = table.expand(symbol)[-1]
                    nxt = token[i + 1]
                    nxt_head = table.expand(nxt)[0] if nxt >= table.base_id else nxt
                    assert token_contains_subpath(token, table, (tail, nxt_head))
                    return
        pytest.skip("no supernode-adjacent token in this table")

    def test_empty_query_matches(self, setup):
        _, store, _ = setup
        assert token_contains_subpath(store.token(0), store.table, ())

    def test_no_match(self, setup):
        _, store, _ = setup
        assert not token_contains_subpath(store.token(0), store.table, (10**9, 10**9 + 1))


class TestSearcher:
    @pytest.mark.parametrize("probe_path, start, length", [
        (0, 0, 2), (1, 1, 3), (5, 2, 4), (9, 0, 5),
    ])
    def test_matches_brute_force(self, setup, probe_path, start, length):
        dataset, _, searcher = setup
        path = dataset[probe_path]
        if start + length > len(path):
            pytest.skip("probe outside path")
        query = tuple(path[start : start + length])
        assert searcher.search_ids(query) == brute_force_ids(dataset, query)

    def test_single_vertex_query(self, setup):
        dataset, _, searcher = setup
        v = dataset[3][0]
        expected = [i for i, p in enumerate(dataset) if v in p]
        assert searcher.search_ids((v,)) == expected

    def test_absent_subpath(self, setup):
        _, _, searcher = setup
        assert searcher.search_ids((10**9, 10**9 + 1)) == []

    def test_order_matters(self, setup):
        dataset, _, searcher = setup
        path = dataset[0]
        forward = tuple(path[0:3])
        backward = tuple(reversed(forward))
        assert searcher.search_ids(forward) == brute_force_ids(dataset, forward)
        assert searcher.search_ids(backward) == brute_force_ids(dataset, backward)

    def test_search_returns_decompressed_paths(self, setup):
        dataset, _, searcher = setup
        query = tuple(dataset[2][1:4])
        for path in searcher.search(query):
            assert any(
                tuple(path[j : j + len(query)]) == query
                for j in range(len(path) - len(query) + 1)
            )

    def test_count(self, setup):
        dataset, _, searcher = setup
        query = tuple(dataset[0][0:2])
        assert searcher.count(query) == len(brute_force_ids(dataset, query))


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_search_equals_brute_force_property(data):
    from repro.paths.dataset import PathDataset

    paths = data.draw(
        st.lists(
            st.lists(st.integers(0, 15), min_size=2, max_size=10, unique=True),
            min_size=2, max_size=15,
        )
    )
    dataset = PathDataset(paths)
    codec = OFFSCodec(OFFSConfig(iterations=2, sample_exponent=0))
    store = CompressedPathStore.from_codec(dataset, codec)
    searcher = SubpathSearcher(store)
    # Query: a random slice of a random path.
    host = data.draw(st.sampled_from(paths))
    if len(host) >= 2:
        start = data.draw(st.integers(0, len(host) - 2))
        length = data.draw(st.integers(2, len(host) - start))
        query = tuple(host[start : start + length])
        assert searcher.search_ids(query) == brute_force_ids(dataset, query)
