"""Unit tests for the repro.obs instrumentation subsystem.

Covers the satellite checklist: registry semantics (counter / gauge /
timer in both forms), nested spans, disabled-mode no-op behaviour, JSON
export round-trip — plus the runtime activation plumbing the core layers
rely on and the ProbeStats bridge onto the registry.
"""

import json

import pytest

from repro.core.probestats import ProbeStats
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    SpanTracer,
    activate,
    active_span,
    active_timer,
    deactivate,
    from_json,
    get_active,
    instrumented,
    render_text,
    to_json,
)


class TestCounters:
    def test_counter_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert reg.counter("x").value == 5

    def test_counter_identity_per_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")

    def test_inc_shorthand(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 9)
        assert reg.counters() == {"hits": 10}


class TestGauges:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("level", 3)
        reg.set_gauge("level", 7)
        assert reg.gauge("level").value == 7


class TestTimers:
    def test_context_manager_form(self):
        reg = MetricsRegistry()
        with reg.timeit("t"):
            pass
        timer = reg.timer("t")
        assert timer.count == 1
        assert timer.total_seconds >= 0.0
        assert timer.min_seconds is not None and timer.max_seconds is not None

    def test_decorator_form(self):
        reg = MetricsRegistry()

        @reg.timeit("fn")
        def answer():
            return 42

        assert answer() == 42 and answer() == 42
        assert reg.timer("fn").count == 2

    def test_decorator_times_raising_function(self):
        reg = MetricsRegistry()

        @reg.timeit("boom")
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            boom()
        assert reg.timer("boom").count == 1

    def test_observe_accumulates_distribution(self):
        reg = MetricsRegistry()
        for seconds in (0.5, 0.1, 0.9):
            reg.observe("t", seconds)
        timer = reg.timer("t")
        assert timer.count == 3
        assert timer.min_seconds == pytest.approx(0.1)
        assert timer.max_seconds == pytest.approx(0.9)
        assert timer.mean_seconds == pytest.approx(0.5)


class TestDisabledMode:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        reg.set_gauge("g", 1.0)
        with reg.timeit("t"):
            pass
        reg.observe("t2", 1.0)
        assert len(reg) == 0
        assert reg.as_dict() == {"counters": {}, "gauges": {}, "timers": {}}

    def test_disabled_registry_decorator_is_passthrough(self):
        reg = MetricsRegistry(enabled=False)

        def fn():
            return "ok"

        assert reg.timeit("t")(fn) is fn

    def test_disabled_tracer_yields_none(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("a") as span:
            assert span is None
        assert tracer.roots == [] and tracer.as_dict() == []

    def test_no_active_instrumentation_helpers_are_noops(self):
        assert get_active() is None
        with active_span("phase") as span:
            assert span is None
        with active_timer("t") as timer:
            assert timer is None


class TestSpans:
    def test_nested_spans_build_a_tree(self):
        tracer = SpanTracer()
        with tracer.span("build"):
            with tracer.span("build.iteration", iteration=1) as inner:
                inner.add("matches", 3)
                inner.add("matches", 2)
            with tracer.span("build.iteration", iteration=2):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "build"
        assert [c.attrs["iteration"] for c in root.children] == [1, 2]
        assert root.children[0].counts == {"matches": 5}
        assert root.elapsed_seconds >= sum(c.elapsed_seconds for c in root.children)

    def test_current_and_add_target_innermost(self):
        tracer = SpanTracer()
        assert tracer.current() is None
        tracer.add("ignored")  # outside any span: no-op, no crash
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
                tracer.add("hits")
        assert tracer.roots[0].children[0].counts == {"hits": 1}

    def test_span_closed_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("x")
        assert tracer.current() is None
        assert tracer.roots[0].name == "risky"
        assert tracer.roots[0].elapsed_seconds >= 0.0


class TestRuntime:
    def test_instrumented_scope_activates_and_restores(self):
        assert get_active() is None
        with instrumented() as obs:
            assert get_active() is obs
            obs.registry.inc("seen")
        assert get_active() is None
        assert obs.registry.counters() == {"seen": 1}

    def test_instrumented_scopes_nest(self):
        with instrumented() as outer:
            with instrumented() as inner:
                assert get_active() is inner
            assert get_active() is outer

    def test_activate_deactivate(self):
        inst = Instrumentation()
        try:
            assert activate(inst) is inst
            assert get_active() is inst
        finally:
            deactivate()
        assert get_active() is None


class TestExport:
    def _populated(self) -> Instrumentation:
        obs = Instrumentation()
        obs.registry.inc("paths", 7)
        obs.registry.set_gauge("bytes", 123.0)
        obs.registry.observe("t", 0.25)
        with obs.span("build", matcher="hash"):
            with obs.span("build.iteration", iteration=1) as span:
                span.add("matches", 4)
        return obs

    def test_json_round_trip(self):
        obs = self._populated()
        snapshot = from_json(to_json(obs))
        assert snapshot["metrics"] == obs.registry.as_dict()
        assert snapshot["spans"] == obs.tracer.as_dict()
        assert snapshot["schema_version"] == 1
        # And the parsed snapshot re-serializes identically.
        assert to_json(snapshot) == to_json(obs)

    def test_from_json_rejects_non_snapshots(self):
        with pytest.raises(ValueError):
            from_json(json.dumps({"nope": 1}))

    def test_render_text_mentions_everything(self):
        text = render_text(self._populated())
        for needle in ("paths", "bytes", "build.iteration", "matches=4"):
            assert needle in text

    def test_render_text_empty(self):
        assert "no metrics" in render_text(Instrumentation())


class TestMerge:
    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.observe("t", 0.2)
        b.observe("t", 0.6)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 9.0
        timer = a.timer("t")
        assert timer.count == 2
        assert timer.min_seconds == pytest.approx(0.2)
        assert timer.max_seconds == pytest.approx(0.6)

    def test_merge_dict_survives_snapshot_boundary(self):
        src = MetricsRegistry()
        src.inc("x", 4)
        dst = MetricsRegistry()
        dst.merge_dict(json.loads(src.to_json()))
        assert dst.counter("x").value == 4

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert len(reg) == 0 and reg.enabled


class TestProbeStatsBridge:
    """The satellite fix: reset/snapshot/delta are the public batch API."""

    def test_reset_between_longest_match_batches(self):
        from repro.core.matcher import HashCandidates

        cands = HashCandidates()
        cands.add((1, 2, 3))
        path = (1, 2, 3, 4)
        cands.longest_match(path, 0, 4)
        first_batch = cands.stats.snapshot()
        assert first_batch.probes > 0 and first_batch.hashed_vertices > 0

        stats_obj = cands.stats
        cands.stats.reset()  # public API: no re-instantiation needed
        assert cands.stats is stats_obj
        assert cands.stats.probes == 0 and cands.stats.hashed_vertices == 0

        cands.longest_match(path, 0, 4)
        assert cands.stats.snapshot() == first_batch

    def test_delta_since_and_publish(self):
        stats = ProbeStats(probes=10, hashed_vertices=40)
        before = stats.snapshot()
        stats.probes += 5
        stats.hashed_vertices += 12
        delta = stats.delta_since(before)
        assert delta == ProbeStats(5, 12)
        assert delta.as_dict() == {"probes": 5, "hashed_vertices": 12}

        reg = MetricsRegistry()
        delta.publish(reg, "matcher")
        delta.publish(reg, "matcher")
        assert reg.counters() == {
            "matcher.probes": 10,
            "matcher.hashed_vertices": 24,
        }

    def test_every_backend_carries_stats(self):
        from repro.core.matcher import make_candidate_set

        for backend in ("hash", "multilevel", "trie"):
            cands = make_candidate_set(backend)
            assert isinstance(cands.stats, ProbeStats)
            cands.stats.reset()
            assert cands.stats.probes == 0


class TestCoreIntegration:
    def test_build_emits_iteration_spans_and_probe_counters(self, simple_dataset):
        from repro.core.builder import TableBuilder
        from repro.core.config import OFFSConfig

        with instrumented() as obs:
            TableBuilder(OFFSConfig(iterations=3, sample_exponent=0)).build(
                simple_dataset
            )
        counters = obs.registry.counters()
        assert counters["build.iterations"] == 3
        assert counters["build.matcher.probes"] > 0
        roots = obs.tracer.roots
        assert [r.name for r in roots] == ["build"]
        child_names = [c.name for c in roots[0].children]
        assert child_names.count("build.iteration") == 3
        assert "build.initialize" in child_names and "build.finalize" in child_names

    def test_store_counts_and_gauges(self, simple_dataset):
        from repro.core.config import OFFSConfig
        from repro.core.offs import OFFSCodec
        from repro.core.store import CompressedPathStore

        codec = OFFSCodec(OFFSConfig(iterations=2, sample_exponent=0)).fit(
            simple_dataset
        )
        with instrumented() as obs:
            store = CompressedPathStore.from_dataset(simple_dataset, codec.table)
            store.retrieve(0)
            store.compression_ratio()
        counters = obs.registry.counters()
        assert counters["store.ingested_paths"] == len(simple_dataset)
        assert counters["store.retrieved_paths"] == 1
        assert counters["matcher.probes"] > 0
        gauges = obs.registry.as_dict()["gauges"]
        assert gauges["store.compressed_bytes"] > 0
        # (no ordering assertion: on tiny inputs the table overhead can make
        # the compressed form larger than the raw one)
        assert gauges["store.raw_bytes"] > 0

    def test_instrumentation_off_changes_no_results(self, simple_dataset):
        from repro.core.config import OFFSConfig
        from repro.core.offs import OFFSCodec

        config = OFFSConfig(iterations=3, sample_exponent=0)
        plain = OFFSCodec(config).fit(simple_dataset)
        with instrumented():
            observed = OFFSCodec(config).fit(simple_dataset)
        assert plain.table.subpaths == observed.table.subpaths
        for path in simple_dataset:
            assert plain.compress_path(path) == observed.compress_path(path)
