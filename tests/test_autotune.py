"""Unit tests for the (i, k) auto-tuner."""

import pytest

from repro.core.autotune import TuningPoint, autotune, choose, sweep
from repro.core.config import OFFSConfig
from repro.workloads.registry import make_dataset


def point(i, k, cr, cs):
    return TuningPoint(i, k, cr, cs)


class TestChoose:
    def test_default_is_fastest_near_best_cr(self):
        points = [
            point(4, 0, 3.0, 1.0),
            point(4, 2, 2.95, 3.0),   # within 5% of best, much faster
            point(1, 4, 2.0, 9.0),
        ]
        default, _ = choose(points, cr_tolerance=0.05)
        assert (default.iterations, default.sample_exponent) == (4, 2)

    def test_fast_mode_bounded_cr_loss(self):
        points = [
            point(4, 2, 3.0, 3.0),
            point(2, 2, 2.8, 6.0),    # -0.2 CR, 2x speed: valid fast pick
            point(1, 4, 1.5, 12.0),   # too lossy
        ]
        default, fast = choose(points, cr_tolerance=0.01, fast_cr_loss=0.35)
        assert (fast.iterations, fast.sample_exponent) == (2, 2)

    def test_fast_can_equal_default(self):
        points = [point(4, 2, 3.0, 5.0)]
        default, fast = choose(points)
        assert default == fast

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            choose([])


class TestSweep:
    def test_grid_coverage(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        points = sweep(dataset, i_values=(1, 3), k_values=(0, 1), pilot_paths=150)
        assert len(points) == 4
        assert {(p.iterations, p.sample_exponent) for p in points} == {
            (1, 0), (1, 1), (3, 0), (3, 1)
        }

    def test_more_iterations_do_not_hurt_cr_much(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        points = sweep(dataset, i_values=(1, 4), k_values=(0,), pilot_paths=150)
        by_i = {p.iterations: p for p in points}
        assert by_i[4].compression_ratio >= by_i[1].compression_ratio * 0.9


class TestAutotune:
    def test_end_to_end(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        result = autotune(dataset, pilot_paths=150, seed=1)
        assert result.pilot_paths == 150
        assert result.default_mode in result.points
        assert result.fast_mode in result.points
        # The fast mode never compresses better AND slower than default.
        assert result.fast_mode.compression_speed_mbps >= \
            result.default_mode.compression_speed_mbps

    def test_configs_materialize(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        result = autotune(dataset, pilot_paths=100)
        cfg = result.default_config(OFFSConfig(delta=8))
        assert cfg.iterations == result.default_mode.iterations
        assert cfg.sample_exponent == result.default_mode.sample_exponent
        fast_cfg = result.fast_config()
        assert fast_cfg.iterations == result.fast_mode.iterations

    def test_tuned_codec_works(self):
        from repro.core.offs import OFFSCodec

        dataset = make_dataset("sanfrancisco", "tiny")
        result = autotune(dataset, pilot_paths=100)
        codec = OFFSCodec(result.default_config()).fit(dataset)
        for path in list(dataset)[:20]:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_point_rows(self):
        p = point(4, 2, 3.14159, 1.23456)
        assert p.as_row() == (4, 2, 3.142, 1.235)


# -- ablation-guided mode --------------------------------------------------------


def synthetic_report(entries, knobs=None):
    """A minimal BENCH_ablation.json payload for override tests."""
    return {
        "benchmark": "ablation",
        "schema_version": 1,
        "knobs": knobs or [
            {"name": "matcher", "target": "config.matcher", "requires": []},
            {"name": "hash_bits", "target": "config.hash_bits",
             "requires": [["config.matcher", "rolling"]]},
            {"name": "capacity", "target": "config.capacity", "requires": []},
            {"name": "iterations", "target": "config.iterations", "requires": []},
            {"name": "sample_exponent", "target": "config.sample_exponent",
             "requires": []},
            {"name": "processes", "target": "spec.processes", "requires": []},
        ],
        "importance": entries,
    }


def entry(knob, component, importance, values=None, workload="w"):
    return {
        "workload": workload,
        "knob": knob,
        "component": component,
        "importance": importance,
        "values": values or {},
    }


class TestAblationOverrides:
    def test_unimportant_components_are_pruned(self):
        from repro.core.autotune import ablation_overrides

        report = synthetic_report([
            entry("iterations", "table construction", 0.5),
            entry("capacity", "candidate capacity", 0.001),
        ])
        overrides, important, pruned = ablation_overrides(report, workload="w")
        assert important == ("iterations",)
        assert pruned == ("candidate capacity",)
        assert overrides == {}  # the (i, k) grid owns iterations

    def test_cr_improving_value_becomes_an_override(self):
        from repro.core.autotune import ablation_overrides

        report = synthetic_report([
            entry("capacity", "candidate capacity", 0.3,
                  {"64": {"delta_cr": 0.3, "delta_cs": 0.0},
                   "1024": {"delta_cr": -0.1, "delta_cs": 0.5}}),
        ])
        overrides, _, _ = ablation_overrides(report, workload="w")
        assert overrides == {"capacity": 64}

    def test_cr_losing_values_never_override(self):
        from repro.core.autotune import ablation_overrides

        report = synthetic_report([
            entry("capacity", "candidate capacity", 0.3,
                  {"64": {"delta_cr": -0.3, "delta_cs": 2.0}}),
        ])
        overrides, _, _ = ablation_overrides(report, workload="w")
        assert overrides == {}

    def test_requires_conflict_resolved_by_importance(self):
        from repro.core.autotune import ablation_overrides

        # matcher (more important) picks "hash"; hash_bits requires the
        # rolling backend and so must be dropped, not fight the winner.
        report = synthetic_report([
            entry("matcher", "matcher backend", 0.5,
                  {"hash": {"delta_cr": 0.0, "delta_cs": 1.0}}),
            entry("hash_bits", "matcher hashing", 0.2,
                  {"12": {"delta_cr": 0.1, "delta_cs": 0.1}}),
        ])
        overrides, important, _ = ablation_overrides(report, workload="w")
        assert overrides == {"matcher": "hash"}
        assert set(important) == {"matcher", "hash_bits"}

    def test_requires_applied_with_the_winning_value(self):
        from repro.core.autotune import ablation_overrides

        report = synthetic_report([
            entry("hash_bits", "matcher hashing", 0.2,
                  {"12": {"delta_cr": 0.1, "delta_cs": 0.1}}),
        ])
        overrides, _, _ = ablation_overrides(report, workload="w")
        assert overrides == {"matcher": "rolling", "hash_bits": 12}

    def test_unknown_workload_falls_back_to_cross_workload_max(self):
        from repro.core.autotune import ablation_overrides

        report = synthetic_report([
            entry("capacity", "candidate capacity", 0.001, workload="a"),
            entry("capacity", "candidate capacity", 0.4,
                  {"64": {"delta_cr": 0.4, "delta_cs": 0.0}}, workload="b"),
        ])
        overrides, important, _ = ablation_overrides(report, workload="zzz")
        assert overrides == {"capacity": 64}
        assert important == ("capacity",)


class TestAblationGuidedAutotune:
    def _report(self):
        from repro.bench.ablation import run_ablation

        return run_ablation(workloads=["alibaba"], size="tiny", rounds=1)

    def test_pruned_grid_shrinks_the_sweep(self):
        from repro.core.autotune import autotune

        dataset = make_dataset("alibaba", "tiny")
        report = synthetic_report([
            entry("capacity", "candidate capacity", 0.001, workload="alibaba"),
            entry("iterations", "table construction", 0.5, workload="alibaba"),
            entry("sample_exponent", "construction sampling", 0.001,
                  workload="alibaba"),
        ])
        result = autotune(
            dataset, pilot_paths=150, ablation_report=report,
            i_values=(1, 2), k_values=(0, 1, 2),
        )
        # sample_exponent scored unimportant: its axis collapses to the
        # base default, leaving len(i_values) x 1 points.
        assert result.used_ablation
        assert len(result.points) == 2
        assert {p.sample_exponent for p in result.points} == {
            OFFSConfig().sample_exponent
        }
        assert "construction sampling" in result.pruned_components

    def test_guard_rejects_a_lying_report(self):
        from repro.core.autotune import autotune
        from repro.core.offs import OFFSCodec
        from repro.analysis.metrics import measure_codec
        from repro.paths.dataset import PathDataset

        dataset = make_dataset("alibaba", "tiny")
        # The report swears a tiny candidate capacity improved CR; on the
        # real data it strangles the table.  The guard must catch it.
        report = synthetic_report([
            entry("capacity", "candidate capacity", 0.9,
                  {"8": {"delta_cr": 0.9, "delta_cs": 0.0}},
                  workload="alibaba"),
        ])
        result = autotune(
            dataset, pilot_paths=200, ablation_report=report,
            i_values=(4,), k_values=(2,),
        )
        cfg = result.best_config()
        pilot = PathDataset(list(dataset)[:200], name="pilot")
        best = measure_codec(OFFSCodec(cfg), pilot, verify=True)
        default = measure_codec(
            OFFSCodec(OFFSConfig().with_(seed=0)), pilot, verify=True
        )
        assert best.compression_ratio >= default.compression_ratio
        if result.fallback_to_default:
            assert cfg.capacity is None  # the default, not the lie

    def test_recommendation_never_worse_than_default(self):
        """Property: guided autotune holds the default's CR (seeded)."""
        from hypothesis import given, settings, strategies as st
        from repro.core.autotune import autotune
        from repro.core.offs import OFFSCodec
        from repro.analysis.metrics import measure_codec
        from repro.paths.dataset import PathDataset

        report = self._report()

        @settings(max_examples=4, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=3),
            workload=st.sampled_from(["alibaba", "rome", "sanfrancisco"]),
        )
        def check(seed, workload):
            dataset = make_dataset(workload, "tiny", seed=seed)
            result = autotune(
                dataset, pilot_paths=150, seed=seed,
                ablation_report=report, i_values=(2, 4), k_values=(0, 2),
            )
            pilot = PathDataset(list(dataset)[:150], name="pilot")
            # verify=True: the recommendation must round-trip exactly.
            best = measure_codec(
                OFFSCodec(result.best_config()), pilot, verify=True
            )
            default = measure_codec(
                OFFSCodec(OFFSConfig().with_(seed=seed)), pilot, verify=True
            )
            assert best.compression_ratio >= default.compression_ratio

        check()

    def test_plain_autotune_unchanged_without_report(self):
        from repro.core.autotune import autotune

        dataset = make_dataset("sanfrancisco", "tiny")
        result = autotune(dataset, pilot_paths=100)
        assert not result.used_ablation
        assert result.recommended_config is None
        assert result.pruned_components == ()
        assert result.best_config() == result.default_config()
