"""Unit tests for the (i, k) auto-tuner."""

import pytest

from repro.core.autotune import TuningPoint, autotune, choose, sweep
from repro.core.config import OFFSConfig
from repro.workloads.registry import make_dataset


def point(i, k, cr, cs):
    return TuningPoint(i, k, cr, cs)


class TestChoose:
    def test_default_is_fastest_near_best_cr(self):
        points = [
            point(4, 0, 3.0, 1.0),
            point(4, 2, 2.95, 3.0),   # within 5% of best, much faster
            point(1, 4, 2.0, 9.0),
        ]
        default, _ = choose(points, cr_tolerance=0.05)
        assert (default.iterations, default.sample_exponent) == (4, 2)

    def test_fast_mode_bounded_cr_loss(self):
        points = [
            point(4, 2, 3.0, 3.0),
            point(2, 2, 2.8, 6.0),    # -0.2 CR, 2x speed: valid fast pick
            point(1, 4, 1.5, 12.0),   # too lossy
        ]
        default, fast = choose(points, cr_tolerance=0.01, fast_cr_loss=0.35)
        assert (fast.iterations, fast.sample_exponent) == (2, 2)

    def test_fast_can_equal_default(self):
        points = [point(4, 2, 3.0, 5.0)]
        default, fast = choose(points)
        assert default == fast

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            choose([])


class TestSweep:
    def test_grid_coverage(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        points = sweep(dataset, i_values=(1, 3), k_values=(0, 1), pilot_paths=150)
        assert len(points) == 4
        assert {(p.iterations, p.sample_exponent) for p in points} == {
            (1, 0), (1, 1), (3, 0), (3, 1)
        }

    def test_more_iterations_do_not_hurt_cr_much(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        points = sweep(dataset, i_values=(1, 4), k_values=(0,), pilot_paths=150)
        by_i = {p.iterations: p for p in points}
        assert by_i[4].compression_ratio >= by_i[1].compression_ratio * 0.9


class TestAutotune:
    def test_end_to_end(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        result = autotune(dataset, pilot_paths=150, seed=1)
        assert result.pilot_paths == 150
        assert result.default_mode in result.points
        assert result.fast_mode in result.points
        # The fast mode never compresses better AND slower than default.
        assert result.fast_mode.compression_speed_mbps >= \
            result.default_mode.compression_speed_mbps

    def test_configs_materialize(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        result = autotune(dataset, pilot_paths=100)
        cfg = result.default_config(OFFSConfig(delta=8))
        assert cfg.iterations == result.default_mode.iterations
        assert cfg.sample_exponent == result.default_mode.sample_exponent
        fast_cfg = result.fast_config()
        assert fast_cfg.iterations == result.fast_mode.iterations

    def test_tuned_codec_works(self):
        from repro.core.offs import OFFSCodec

        dataset = make_dataset("sanfrancisco", "tiny")
        result = autotune(dataset, pilot_paths=100)
        codec = OFFSCodec(result.default_config()).fit(dataset)
        for path in list(dataset)[:20]:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_point_rows(self):
        p = point(4, 2, 3.14159, 1.23456)
        assert p.as_row() == (4, 2, 3.142, 1.235)
