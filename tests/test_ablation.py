"""Unit tests for the component-ablation matrix (repro.bench.ablation)."""

import json

import pytest

from repro.bench.ablation import (
    KNOBS,
    SCHEMA_VERSION,
    Cell,
    Knob,
    baseline_spec,
    build_report,
    format_value,
    generate_matrix,
    importance_table,
    knob_by_name,
    load_report,
    measure_cell,
    run_matrix,
)
from repro.core.errors import InvalidInputError

#: A two-knob registry keeping executor tests to a handful of fast cells.
SMALL_KNOBS = (
    knob_by_name("matcher"),
    knob_by_name("store_format"),
)


def _result(workload, knob, component, value, cr, cs=1.0, ds=1.0, pds=1.0):
    """A synthetic run_matrix result row (importance-table input)."""
    return {
        "run_id": f"{workload}-{knob}={value}" if knob else f"{workload}-baseline",
        "workload": workload,
        "knob": knob,
        "component": component,
        "value": value,
        "verified": True,
        "compression_ratio": cr,
        "compression_speed_mbps": cs,
        "decompression_speed_mbps": ds,
        "partial_decompression_speed_mbps": pds,
    }


class TestRunIds:
    def test_ids_are_workload_knob_value_slugs(self):
        ids = {c.run_id for c in generate_matrix(["rome"], knobs=SMALL_KNOBS)}
        assert ids == {
            "rome-baseline",
            "rome-matcher=hash",
            "rome-matcher=multilevel",
            "rome-matcher=trie",
            "rome-store_format=v2",
        }

    def test_workload_ordering_cannot_change_the_matrix(self):
        forward = generate_matrix(["alibaba", "rome"], knobs=SMALL_KNOBS)
        backward = generate_matrix(["rome", "alibaba"], knobs=SMALL_KNOBS)
        duplicated = generate_matrix(
            ["rome", "alibaba", "rome"], knobs=SMALL_KNOBS
        )
        assert forward == backward == duplicated

    def test_knob_ordering_cannot_change_the_id_set(self):
        forward = generate_matrix(["rome"], knobs=SMALL_KNOBS)
        backward = generate_matrix(["rome"], knobs=tuple(reversed(SMALL_KNOBS)))
        assert forward == backward

    def test_cells_sorted_by_run_id(self):
        cells = generate_matrix(mode="single")
        ids = [c.run_id for c in cells]
        assert ids == sorted(ids)

    def test_pairwise_mode_adds_interaction_cells(self):
        single = {c.run_id for c in generate_matrix(["rome"], knobs=SMALL_KNOBS)}
        pairwise = {
            c.run_id
            for c in generate_matrix(["rome"], knobs=SMALL_KNOBS, mode="pairwise")
        }
        assert single < pairwise
        assert "rome-matcher=hash+store_format=v2" in pairwise

    def test_default_registry_covers_six_plus_knobs(self):
        assert len({k.name for k in KNOBS}) >= 6

    def test_bad_mode_rejected(self):
        with pytest.raises(InvalidInputError):
            generate_matrix(mode="exhaustive")

    def test_value_formatting_is_canonical(self):
        assert format_value(True) == "on"
        assert format_value(False) == "off"
        assert format_value(None) == "none"
        assert format_value(12) == "12"
        with pytest.raises(InvalidInputError):
            format_value(0.5)


class TestKnobRegistry:
    def test_requires_settings_precede_the_knob_value(self):
        knob = knob_by_name("hash_bits")
        assert knob.settings_for(12) == (
            ("config.matcher", "rolling"),
            ("config.hash_bits", 12),
        )

    def test_unknown_knob_rejected(self):
        with pytest.raises(InvalidInputError):
            knob_by_name("quantum_tunneling")

    def test_cell_spec_applies_settings(self):
        cell = next(
            c
            for c in generate_matrix(["rome"], knobs=SMALL_KNOBS)
            if c.run_id == "rome-store_format=v2"
        )
        spec = cell.spec(size="tiny", seed=3)
        assert spec.store_format == "v2"
        assert spec.workload == "rome"
        assert spec.seed == 3
        baseline = baseline_spec("rome", size="tiny", seed=3)
        assert spec.config == baseline.config


class TestMeasureCell:
    def test_baseline_cell_verifies_and_scores(self):
        result = measure_cell(baseline_spec("rome", size="tiny"), rounds=1)
        assert result["verified"] is True
        assert result["compression_ratio"] > 1.0
        assert result["compression_speed_mbps"] > 0
        assert result["decompression_speed_mbps"] > 0
        assert result["partial_decompression_speed_mbps"] > 0

    def test_v2_and_sharded_routes_verify(self):
        for cell_id in ("rome-store_format=v2", "rome-shards=2"):
            cell = next(
                c for c in generate_matrix(["rome"]) if c.run_id == cell_id
            )
            result = measure_cell(cell.spec(size="tiny"), rounds=1)
            assert result["verified"] is True, cell_id
            assert result["compressed_bytes"] > 0


class TestResume:
    def _cells(self):
        return [
            c
            for c in generate_matrix(["rome"], knobs=SMALL_KNOBS)
            if c.run_id in ("rome-baseline", "rome-matcher=hash")
        ]

    def test_resume_skips_completed_cells(self, tmp_path):
        from repro.obs import instrumented
        from repro.obs import catalog

        partial = tmp_path / "partial.json"
        cells = self._cells()
        first = run_matrix(cells, size="tiny", rounds=1, partial_path=str(partial))
        assert set(first) == {c.run_id for c in cells}
        assert partial.exists()

        seen = []
        with instrumented() as obs:
            second = run_matrix(
                cells, size="tiny", rounds=1, partial_path=str(partial),
                echo=seen.append,
            )
            skipped = obs.registry.counter(catalog.ABLATION_CELLS_SKIPPED).value
            measured = obs.registry.counter(catalog.ABLATION_CELLS).value
        assert second == first  # resumed results are the recorded results
        assert skipped == len(cells) and measured == 0
        assert all(line.startswith("skip ") for line in seen)

    def test_partial_for_other_seed_is_ignored(self, tmp_path):
        partial = tmp_path / "partial.json"
        cells = self._cells()
        run_matrix(cells, size="tiny", seed=0, rounds=1, partial_path=str(partial))
        data = json.loads(partial.read_text())
        assert data["schema_version"] == SCHEMA_VERSION

        seen = []
        run_matrix(
            cells, size="tiny", seed=1, rounds=1,
            partial_path=str(partial), echo=seen.append,
        )
        assert not any(line.startswith("skip ") for line in seen)

    def test_unverified_partial_rows_are_remeasured(self, tmp_path):
        partial = tmp_path / "partial.json"
        cells = self._cells()
        run_matrix(cells, size="tiny", rounds=1, partial_path=str(partial))
        data = json.loads(partial.read_text())
        data["results"]["rome-baseline"]["verified"] = False
        partial.write_text(json.dumps(data))

        seen = []
        run_matrix(
            cells, size="tiny", rounds=1, partial_path=str(partial),
            echo=seen.append,
        )
        assert "skip rome-baseline (resumed)" not in seen
        assert "skip rome-matcher=hash (resumed)" in seen


class TestImportance:
    def _tied_results(self, order=(0, 1, 2)):
        rows = [
            _result("w", None, "baseline", "baseline", cr=2.0),
            # Two knobs with the exact same CR delta: rank must tie-break
            # on (component, knob), never on insertion order.
            _result("w", "zeta", "aaa component", "1", cr=2.2),
            _result("w", "alpha", "bbb component", "1", cr=2.2),
        ]
        return {rows[i]["run_id"]: rows[i] for i in order}

    def test_tied_deltas_rank_deterministically(self):
        entries = importance_table(self._tied_results())
        assert [e["knob"] for e in entries] == ["zeta", "alpha"]
        assert [e["rank"] for e in entries] == [1, 2]
        assert entries[0]["importance"] == entries[1]["importance"] == 0.1

    def test_insertion_order_cannot_shuffle_ranks(self):
        baseline_first = importance_table(self._tied_results((0, 1, 2)))
        baseline_last = importance_table(self._tied_results((2, 1, 0)))
        assert baseline_first == baseline_last

    def test_missing_baseline_rejected(self):
        rows = {"w-alpha=1": _result("w", "alpha", "c", "1", cr=2.0)}
        with pytest.raises(InvalidInputError):
            importance_table(rows)

    def test_pairwise_cells_do_not_score(self):
        results = self._tied_results()
        pair = _result("w", "alpha+zeta", "c x c", "1+1", cr=9.0)
        results[pair["run_id"]] = pair
        entries = importance_table(results)
        assert {e["knob"] for e in entries} == {"alpha", "zeta"}

    def test_best_value_maximizes_cr(self):
        results = self._tied_results()
        worse = _result("w", "alpha", "bbb component", "2", cr=1.5)
        results[worse["run_id"]] = worse
        entries = importance_table(results)
        alpha = next(e for e in entries if e["knob"] == "alpha")
        assert alpha["best_value"] == "1"
        # The lossy value still widens the knob's importance.
        assert alpha["importance"] == 0.25


class TestReport:
    def test_report_round_trips_through_load(self, tmp_path):
        results = {
            "w-baseline": _result("w", None, "baseline", "baseline", cr=2.0),
            "w-alpha=1": _result("w", "alpha", "c", "1", cr=2.2),
        }
        report = build_report(
            results, workloads=["w"], size="tiny", seed=0, rounds=1
        )
        assert report["schema_version"] == SCHEMA_VERSION
        assert list(report["runs"]) == sorted(results)
        target = tmp_path / "BENCH_ablation.json"
        target.write_text(json.dumps(report))
        assert load_report(str(target)) == report

    def test_load_rejects_foreign_payloads(self, tmp_path):
        target = tmp_path / "other.json"
        target.write_text(json.dumps({"benchmark": "smoke_fig5_speed"}))
        with pytest.raises(InvalidInputError):
            load_report(str(target))
