"""Unit tests for the Section VI-B measures and the size accounting."""

import pytest

from repro.analysis.metrics import (
    CompressionMeasurement,
    compression_ratio,
    measure_codec,
    measure_decompression,
    measure_partial_decompression,
)
from repro.analysis.sizing import dataset_raw_bytes, tokens_total_bytes
from repro.analysis.stats import dataset_stats_table, format_table
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.paths.dataset import PathDataset
from repro.paths.encoding import FixedWidthEncoding, VarintEncoding


class TestSizing:
    def test_raw_bytes_is_ids_plus_markers(self):
        ds = PathDataset([[1, 2, 3], [4, 5]])
        assert dataset_raw_bytes(ds) == 4 * (5 + 2)

    def test_varint_raw_bytes(self):
        ds = PathDataset([[1, 200]])
        enc = VarintEncoding()
        assert dataset_raw_bytes(ds, enc) == 1 + 1 + 2  # marker + 1 + 2 bytes

    def test_tokens_total_includes_rule(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        tokens = codec.compress_dataset(simple_dataset)
        total = tokens_total_bytes(codec, tokens)
        assert total > codec.rule_size_bytes()


class TestMeasurement:
    def test_cr_definition(self):
        m = CompressionMeasurement(
            codec_name="x", dataset_name="d", raw_bytes=1000,
            compressed_bytes=250, rule_bytes=50,
            fit_seconds=1.0, compress_seconds=1.0, decompress_seconds=0.5,
        )
        assert m.compression_ratio == 4.0
        # CS = raw MB / (fit + compress) seconds
        assert m.compression_speed_mbps == pytest.approx(1000 / 1e6 / 2.0)
        assert m.decompression_speed_mbps == pytest.approx(1000 / 1e6 / 0.5)
        assert m.as_row()[0] == "x"

    def test_zero_time_safe(self):
        m = CompressionMeasurement(
            codec_name="x", dataset_name="d", raw_bytes=10,
            compressed_bytes=0, rule_bytes=0,
            fit_seconds=0.0, compress_seconds=0.0, decompress_seconds=0.0,
        )
        assert m.compression_ratio == 0.0
        assert m.compression_speed_mbps == 0.0
        assert m.decompression_speed_mbps == 0.0

    def test_measure_codec_verifies_roundtrip(self, simple_dataset, exhaustive_config):
        m = measure_codec(OFFSCodec(exhaustive_config), simple_dataset)
        assert m.compression_ratio > 1.0
        assert m.raw_bytes == dataset_raw_bytes(simple_dataset)

    def test_measure_codec_catches_corruption(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config)

        class LossyCodec:
            name = "lossy"
            def fit(self, ds): codec.fit(ds); return self
            def compress_path(self, p): return codec.compress_path(p)
            def decompress_path(self, t): return codec.decompress_path(t)[:-1]
            def rule_size_bytes(self, enc): return 0
            def compressed_size_bytes(self, t, enc): return 0

        with pytest.raises(AssertionError, match="lossy"):
            measure_codec(LossyCodec(), simple_dataset)

    def test_compression_ratio_helper(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        tokens = codec.compress_dataset(simple_dataset)
        cr = compression_ratio(codec, simple_dataset, tokens)
        assert cr == pytest.approx(
            dataset_raw_bytes(simple_dataset) / tokens_total_bytes(codec, tokens)
        )

    def test_measure_decompression_positive(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        tokens = codec.compress_dataset(simple_dataset)
        assert measure_decompression(codec, tokens, 1000) > 0

    def test_measure_partial_decompression(self, simple_dataset, exhaustive_config):
        codec = OFFSCodec(exhaustive_config).fit(simple_dataset)
        store = CompressedPathStore.from_dataset(simple_dataset, codec.table)
        mbps, out_bytes = measure_partial_decompression(store, 0.5, repeats=2)
        assert mbps > 0
        assert out_bytes > 0


class TestStatsTable:
    def test_dataset_stats_rows(self):
        ds = PathDataset([[1, 2, 3]], name="one")
        rows = dataset_stats_table([ds])
        assert rows[0][0] == "Dataset"
        assert rows[1][0] == "one"

    def test_format_table_alignment(self):
        rows = [("a", "b"), ("xx", 1234567), ("y", 2.5)]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1,234,567" in text
        assert "2.5" in text

    def test_format_empty(self):
        assert format_table([], title="T") == "T"
