"""Unit tests for the three candidate-set / prefix-matcher backends.

The contract: all backends return identical longest-match lengths for the
same contents (Algorithm 6 vs Algorithm 7 vs the §IV-D trie differ only in
probe cost).  Backend-specific behaviour is tested in its own class; the
equivalence property lives in ``test_matcher_equivalence.py``.
"""

import pytest

from repro.core.matcher import HashCandidates, make_candidate_set
from repro.core.multilevel import MultiLevelCandidates
from repro.core.rollhash import RollingHashCandidates
from repro.core.trie import TrieCandidates

BACKENDS = ["hash", "multilevel", "trie", "rolling"]


@pytest.fixture(params=BACKENDS)
def cands(request):
    return make_candidate_set(request.param, alpha=3)


class TestCommonBehaviour:
    def test_add_and_weight(self, cands):
        cands.add((1, 2), 2)
        cands.add((1, 2), 3)
        assert cands.weight((1, 2)) == 5

    def test_missing_weight_is_none(self, cands):
        assert cands.weight((9, 9)) is None

    def test_contains(self, cands):
        cands.add((1, 2))
        assert (1, 2) in cands
        assert (2, 1) not in cands

    def test_len(self, cands):
        cands.add((1, 2))
        cands.add((1, 2, 3))
        cands.add((1, 2))
        assert len(cands) == 2

    def test_discard(self, cands):
        cands.add((1, 2))
        cands.discard((1, 2))
        assert (1, 2) not in cands
        cands.discard((1, 2))  # idempotent

    def test_single_vertex_rejected(self, cands):
        with pytest.raises(ValueError):
            cands.add((1,))

    def test_items(self, cands):
        cands.add((1, 2), 4)
        cands.add((3, 4, 5), 1)
        assert dict(cands.items()) == {(1, 2): 4, (3, 4, 5): 1}

    def test_longest_match_prefers_longer(self, cands):
        cands.add((1, 2))
        cands.add((1, 2, 3, 4))
        path = (1, 2, 3, 4, 5)
        assert cands.longest_match(path, 0, 8) == 4

    def test_longest_match_respects_cap(self, cands):
        cands.add((1, 2))
        cands.add((1, 2, 3, 4))
        path = (1, 2, 3, 4, 5)
        assert cands.longest_match(path, 0, 2) == 2

    def test_longest_match_no_candidate_returns_one(self, cands):
        cands.add((7, 8))
        assert cands.longest_match((1, 2, 3), 0, 8) == 1

    def test_longest_match_at_offset(self, cands):
        cands.add((3, 4))
        assert cands.longest_match((1, 2, 3, 4), 2, 8) == 2

    def test_longest_match_near_path_end(self, cands):
        cands.add((2, 3))
        assert cands.longest_match((1, 2, 3), 2, 8) == 1  # only vertex 3 left

    def test_reset_weights(self, cands):
        cands.add((1, 2), 5)
        cands.reset_weights()
        assert cands.weight((1, 2)) == 0

    def test_set_weight(self, cands):
        cands.add((1, 2), 5)
        cands.set_weight((1, 2), 2)
        assert cands.weight((1, 2)) == 2
        cands.set_weight((8, 9), 7)
        assert cands.weight((8, 9)) == 7

    def test_increment(self, cands):
        cands.add((1, 2))
        cands.increment((1, 2))
        assert cands.weight((1, 2)) == 2


class TestRanking:
    def test_top_candidates_by_weighted_frequency(self, cands):
        cands.add((1, 2), 10)          # gain 20
        cands.add((3, 4, 5, 6), 4)     # gain 16
        cands.add((7, 8), 1)           # gain 2
        top = cands.top_candidates(2)
        assert [seq for seq, _ in top] == [(1, 2), (3, 4, 5, 6)]

    def test_tie_prefers_longer(self, cands):
        cands.add((1, 2), 6)        # gain 12
        cands.add((3, 4, 5), 4)     # gain 12, longer wins
        top = cands.top_candidates(1)
        assert top[0][0] == (3, 4, 5)

    def test_tie_does_not_prefer_longer_when_weight_one(self, cands):
        # Example 1's caveat: "unless it has a frequency of 1".
        cands.add((1, 2), 3)            # gain 6
        cands.add((3, 4, 5, 6, 7, 8), 1)  # gain 6 but weight 1
        top = cands.top_candidates(1)
        assert top[0][0] == (1, 2)

    def test_prune_to_top(self, cands):
        cands.add((1, 2), 10)
        cands.add((3, 4), 5)
        cands.add((5, 6), 1)
        dropped = cands.prune_to_top(2)
        assert dropped == 1
        assert (5, 6) not in cands
        assert len(cands) == 2

    def test_prune_noop_when_under_capacity(self, cands):
        cands.add((1, 2))
        assert cands.prune_to_top(5) == 0


class TestMultiLevelSpecifics:
    def test_split_across_h1_h2(self):
        ml = MultiLevelCandidates(alpha=2)
        ml.add((1, 2))          # H1
        ml.add((1, 2, 3, 4))    # H2: primary (1,2), secondary (3,4)
        assert ml.weight((1, 2)) == 1
        assert ml.weight((1, 2, 3, 4)) == 1
        assert len(ml) == 2

    def test_discard_long_candidate_cleans_bucket(self):
        ml = MultiLevelCandidates(alpha=2)
        ml.add((1, 2, 3, 4))
        ml.discard((1, 2, 3, 4))
        assert len(ml) == 0
        assert ml._h2 == {}

    def test_promote_prefixes_side_effect(self):
        # Algorithm 7 lines 12-13: failed suffix probe registers the prefix.
        ml = MultiLevelCandidates(alpha=2, promote_prefixes=True)
        ml.add((1, 2, 3, 4))
        assert ml.longest_match((1, 2, 9, 9), 0, 8) == 2
        assert ml.weight((1, 2)) == 1

    def test_no_promotion_by_default(self):
        ml = MultiLevelCandidates(alpha=2)
        ml.add((1, 2, 3, 4))
        assert ml.longest_match((1, 2, 9, 9), 0, 8) == 1
        assert ml.weight((1, 2)) is None

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            MultiLevelCandidates(alpha=0)

    def test_probe_cost_bound_minimized_near_half_delta(self):
        # Lemma 3: the optimum of max(α², (δ-α)²) sits near δ/2.
        costs = {a: MultiLevelCandidates(alpha=a).probe_cost_bound(8) for a in (1, 4, 7)}
        assert costs[4] < costs[1] and costs[4] < costs[7]


class TestTrieSpecifics:
    def test_interior_node_not_terminal(self):
        trie = TrieCandidates()
        trie.add((1, 2, 3))
        assert trie.weight((1, 2)) is None
        assert trie.longest_match((1, 2, 9), 0, 8) == 1

    def test_compact_removes_dead_branches(self):
        trie = TrieCandidates()
        trie.add((1, 2, 3, 4))
        trie.add((1, 2))
        trie.discard((1, 2, 3, 4))
        trie.compact()
        assert trie._recompute_max_len() == 2
        assert trie.longest_match((1, 2, 3, 4), 0, 8) == 2

    def test_items_after_discard(self):
        trie = TrieCandidates()
        trie.add((1, 2), 3)
        trie.add((4, 5), 1)
        trie.discard((4, 5))
        assert dict(trie.items()) == {(1, 2): 3}


class TestFactory:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_candidate_set("bloom")

    def test_factory_types(self):
        assert isinstance(make_candidate_set("hash"), HashCandidates)
        assert isinstance(make_candidate_set("multilevel"), MultiLevelCandidates)
        assert isinstance(make_candidate_set("trie"), TrieCandidates)
        assert isinstance(make_candidate_set("rolling"), RollingHashCandidates)
