"""Unit tests for the bench-regression gate (tools/bench_compare.py)."""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    os.path.join(os.path.dirname(__file__), "..", "tools", "bench_compare.py"),
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


BASE = {
    "benchmark": "smoke",
    "identical_output": True,
    "paths": 400,
    "python": "3.12.0",
    "pipelines": {"flat": {"seconds": 0.010, "msym_per_s": 5.0}},
    "speedup": 3.0,
}


def _write(tmp_path, name, payload):
    target = tmp_path / name
    target.write_text(json.dumps(payload))
    return target


@pytest.fixture()
def tree(tmp_path):
    """A baseline dir plus a fresh dir seeded with identical reports."""
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    _write(baselines, "BENCH_smoke.json", BASE)
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    return baselines, fresh


class TestClassification:
    def test_timing_keys(self):
        assert bench_compare.is_timing_key("pipelines.flat.seconds")
        assert bench_compare.is_timing_key("build_seconds")
        assert bench_compare.is_timing_key("speedup")
        assert bench_compare.is_timing_key("stores.mapped_over_memory")
        assert bench_compare.is_timing_key("pipelines.flat.msym_per_s")
        assert not bench_compare.is_timing_key("identical_output")
        assert not bench_compare.is_timing_key("paths")
        assert not bench_compare.is_timing_key("table_entries")

    def test_flatten_produces_dotted_paths(self):
        flat = dict(bench_compare.flatten(BASE))
        assert flat["pipelines.flat.seconds"] == 0.010
        assert flat["identical_output"] is True


class TestCompare:
    def test_identical_reports_are_clean(self):
        assert bench_compare.compare_payloads(BASE, BASE, "f.json") == []

    def test_timing_drift_within_band_is_silent(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["pipelines"]["flat"]["seconds"] = 0.011  # +10%, inside ±15%
        assert bench_compare.compare_payloads(fresh, BASE, "f.json") == []

    def test_timing_drift_beyond_band_warns_only(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["pipelines"]["flat"]["seconds"] = 0.020  # +100%
        findings = bench_compare.compare_payloads(fresh, BASE, "f.json")
        assert [f.severity for f in findings] == ["warning"]
        assert findings[0].key == "pipelines.flat.seconds"

    def test_correctness_drift_is_an_error(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["identical_output"] = False
        fresh["paths"] = 399
        findings = bench_compare.compare_payloads(fresh, BASE, "f.json")
        assert {f.key for f in findings} == {"identical_output", "paths"}
        assert all(f.severity == "error" for f in findings)

    def test_environment_keys_ignored(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["python"] = "3.10.9"
        assert bench_compare.compare_payloads(fresh, BASE, "f.json") == []

    def test_missing_and_novel_metrics_are_errors(self):
        fresh = json.loads(json.dumps(BASE))
        del fresh["paths"]
        fresh["surprise_metric"] = 1
        findings = bench_compare.compare_payloads(fresh, BASE, "f.json")
        assert {f.key for f in findings} == {"paths", "surprise_metric"}
        assert all(f.severity == "error" for f in findings)

    def test_custom_tolerance(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["pipelines"]["flat"]["seconds"] = 0.013  # +30%
        wide = bench_compare.compare_payloads(fresh, BASE, "f", tolerance=0.5)
        tight = bench_compare.compare_payloads(fresh, BASE, "f", tolerance=0.1)
        assert wide == [] and len(tight) == 1


class TestMain:
    def test_clean_run_exits_zero(self, tree, capsys):
        baselines, fresh = tree
        report = _write(fresh, "BENCH_smoke.json", BASE)
        code = bench_compare.main([str(report), "--baseline-dir", str(baselines)])
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_exits_one_with_gha_error(self, tree, capsys):
        baselines, fresh = tree
        bad = json.loads(json.dumps(BASE))
        bad["identical_output"] = False
        report = _write(fresh, "BENCH_smoke.json", bad)
        code = bench_compare.main(
            [str(report), "--baseline-dir", str(baselines), "--format", "gha"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "::error title=bench-compare" in out
        assert "identical_output" in out

    def test_timing_drift_exits_zero_with_gha_warning(self, tree, capsys):
        baselines, fresh = tree
        slow = json.loads(json.dumps(BASE))
        slow["speedup"] = 1.0
        report = _write(fresh, "BENCH_smoke.json", slow)
        code = bench_compare.main(
            [str(report), "--baseline-dir", str(baselines), "--format", "gha"]
        )
        assert code == 0
        assert "::warning title=bench-compare" in capsys.readouterr().out

    def test_missing_baseline_is_a_usage_error(self, tree, capsys):
        baselines, fresh = tree
        report = _write(fresh, "BENCH_unknown.json", BASE)
        code = bench_compare.main([str(report), "--baseline-dir", str(baselines)])
        assert code == 2

    def test_invalid_json_is_a_usage_error(self, tree):
        baselines, fresh = tree
        report = fresh / "BENCH_smoke.json"
        report.write_text("{not json")
        code = bench_compare.main([str(report), "--baseline-dir", str(baselines)])
        assert code == 2


class TestCommittedBaselines:
    def test_baselines_exist_for_gated_reports(self):
        root = os.path.join(os.path.dirname(__file__), "..")
        for name in ("BENCH_smoke.json", "BENCH_decode.json"):
            path = os.path.join(root, "benchmarks", "baselines", name)
            assert os.path.exists(path), f"missing committed baseline {name}"
            payload = json.load(open(path))
            assert payload.get("identical_output") is True
