"""Unit tests for the DiGraph substrate and the scale-free generator."""

import pytest

from repro.graphs.digraph import DiGraph
from repro.graphs.scalefree import navigation_sessions, preferential_attachment_graph


@pytest.fixture()
def diamond():
    # 0 -> 1 -> 3, 0 -> 2 -> 3
    return DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_from_edges(self, diamond):
        assert diamond.vertex_count == 4
        assert diamond.edge_count == 4

    def test_from_paths(self):
        g = DiGraph.from_paths([(1, 2, 3), (2, 3, 4)])
        assert g.has_edge(1, 2) and g.has_edge(3, 4)
        assert g.edge_count == 3  # (2,3) deduplicated

    def test_duplicate_edge_ignored(self):
        g = DiGraph()
        assert g.add_edge(1, 2)
        assert not g.add_edge(1, 2)
        assert g.edge_count == 1

    def test_isolated_vertex(self):
        g = DiGraph()
        g.add_vertex(7)
        assert 7 in g
        assert g.out_degree(7) == 0


class TestQueries:
    def test_neighbours(self, diamond):
        assert diamond.out_neighbours(0) == {1, 2}
        assert diamond.in_neighbours(3) == {1, 2}

    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(3) == 2
        assert diamond.out_degree(99) == 0

    def test_vertices_sorted(self, diamond):
        assert diamond.vertices() == [0, 1, 2, 3]

    def test_edges_sorted(self, diamond):
        assert list(diamond.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_is_walk(self, diamond):
        assert diamond.is_walk((0, 1, 3))
        assert not diamond.is_walk((0, 3))
        assert diamond.is_walk((5,))  # trivial walk

    def test_degree_histogram(self, diamond):
        assert diamond.degree_histogram() == {2: 1, 1: 2, 0: 1}


class TestShortestPath:
    def test_diamond_path(self, diamond):
        assert diamond.shortest_path(0, 3) == (0, 1, 3)  # deterministic tie-break

    def test_source_equals_target(self, diamond):
        assert diamond.shortest_path(2, 2) == (2,)

    def test_unreachable(self):
        g = DiGraph.from_edges([(0, 1), (2, 3)])
        assert g.shortest_path(0, 3) is None

    def test_unknown_vertex(self, diamond):
        assert diamond.shortest_path(0, 99) is None

    def test_respects_direction(self, diamond):
        assert diamond.shortest_path(3, 0) is None

    def test_reachable_from(self, diamond):
        assert diamond.reachable_from(1) == {1, 3}
        assert diamond.reachable_from(0) == {0, 1, 2, 3}
        assert diamond.reachable_from(42) == set()


class TestScaleFreeGenerator:
    def test_size_and_determinism(self):
        g1 = preferential_attachment_graph(100, seed=3)
        g2 = preferential_attachment_graph(100, seed=3)
        assert g1.vertex_count == 100
        assert list(g1.edges()) == list(g2.edges())

    def test_hub_formation(self):
        g = preferential_attachment_graph(300, seed=1)
        degrees = sorted((g.in_degree(v) for v in g.vertices()), reverse=True)
        # Scale-free: the top hub dwarfs the median vertex.
        assert degrees[0] > 10 * max(1, degrees[len(degrees) // 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(1)
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, edges_per_vertex=0)


class TestNavigationSessions:
    @pytest.fixture(scope="class")
    def graph(self):
        return preferential_attachment_graph(150, seed=2)

    def test_sessions_are_walks(self, graph):
        for session in navigation_sessions(graph, 50, seed=3):
            assert graph.is_walk(session)

    def test_sessions_are_simple(self, graph):
        for session in navigation_sessions(graph, 50, seed=3):
            assert len(set(session)) == len(session)

    def test_max_length(self, graph):
        for session in navigation_sessions(graph, 50, max_length=5, seed=3):
            assert len(session) <= 5

    def test_trail_reuse_creates_repeats(self, graph):
        sessions = navigation_sessions(graph, 200, trail_reuse=0.8, seed=4)
        assert len(set(sessions)) < len(sessions)

    def test_no_reuse_mode(self, graph):
        sessions = navigation_sessions(graph, 30, trail_reuse=0.0, seed=4)
        assert len(sessions) == 30

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            navigation_sessions(graph, 1, max_length=0)
        with pytest.raises(ValueError):
            navigation_sessions(graph, 1, trail_reuse=1.0)
