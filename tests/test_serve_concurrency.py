"""Differential concurrency tests: interleaved clients vs a worker fleet.

A thread pool fires a shuffled, mixed request stream (every endpoint, plus
deliberate failures) at a multi-worker :class:`~repro.serve.PathServer`.
Two properties must hold:

* **per-request correctness** — every response equals the one precomputed
  from direct library calls, no matter which worker answered or what was
  in flight next to it;
* **metric conservation** — after a graceful stop, the per-worker shutdown
  snapshots must account for exactly the requests sent: the fleet-wide sum
  of ``serve.requests`` equals the number of requests the clients got
  responses for, per-endpoint counters match the per-endpoint success
  counts, ``serve.errors`` matches the failure count, and
  ``serve.batch_paths`` equals the total ids shipped through batch
  requests.  Conservation is what proves no request was double-counted,
  dropped, or lost to a torn read-modify-write under thread interleaving.
"""

import json
import multiprocessing
import random
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import urlencode

import pytest

from repro.core.mapped import MappedPathStore
from repro.core.serialize import dump_store_file
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.serve import PathServer, ServeConfig

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="repro.serve requires the fork start method (POSIX)",
)

WORKERS = 3
CLIENT_THREADS = 8


def _build_store():
    table = SupernodeTable(1000, [(1, 2, 3), (4, 5), (6, 7, 8)])
    store = CompressedPathStore(table)
    store.extend([
        (1, 2, 3, 4, 5), (1, 2, 3, 9), (4, 5, 6), (7, 8), (42,),
        (1, 2, 3, 4, 5, 6, 7, 8), (9, 2, 3, 4), (2, 3), (6, 7, 8, 1),
        (5, 6, 7, 8), (1, 2, 3, 1, 2, 3), (8, 7, 6),
    ])
    return store


def _request(url, data=None):
    req = urllib.request.Request(
        url, data=data, method="POST" if data is not None else "GET"
    )
    try:
        with urllib.request.urlopen(req, timeout=15) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _build_request_mix(store_file):
    """(method, route, params/body, expected_status, expected_payload) rows.

    Expectations come from direct library calls over the same file — the
    server under test shares nothing with this ground truth but the bytes
    on disk.
    """
    from repro.queries.retrieval import PathQueryEngine
    from repro.queries.subpath_search import SubpathSearcher

    requests = []
    with MappedPathStore.open(store_file) as store:
        engine = PathQueryEngine(store)
        searcher = SubpathSearcher(store, engine.index)
        n = len(store)
        for pid in range(n):
            requests.append((
                "GET", "/v1/retrieve", {"id": pid}, 200,
                {"id": pid, "path": list(store.retrieve(pid))}, "retrieve", 0,
            ))
            requests.append((
                "GET", "/v1/expanded_length", {"id": pid}, 200,
                {"id": pid, "length": store.expanded_length(pid)},
                "expanded_length", 0,
            ))
        for pid, start, stop in [(0, 1, 4), (5, 2, -1), (10, None, 3), (3, 0, None)]:
            params = {"id": pid}
            if start is not None:
                params["start"] = start
            if stop is not None:
                params["stop"] = stop
            requests.append((
                "GET", "/v1/retrieve_slice", params, 200,
                {"id": pid, "start": start, "stop": stop,
                 "path": list(store.retrieve_slice(pid, start, stop))},
                "retrieve_slice", 0,
            ))
        for ids in [[0, 1, 2], [11, 0], [5, 5, 5, 5], list(range(n)), [9]]:
            requests.append((
                "POST", "/v1/retrieve_many", {"ids": ids}, 200,
                {"ids": ids, "count": len(ids),
                 "paths": [list(p) for p in store.retrieve_many(ids)]},
                "retrieve_many", len(ids),
            ))
        for source, destination in [(1, 5), (6, 1), (1, 8), (42, 42), (3, 99)]:
            expected = engine.paths_between(source, destination)
            requests.append((
                "GET", "/v1/paths_between",
                {"source": source, "destination": destination}, 200,
                {"source": source, "destination": destination,
                 "count": len(expected),
                 "paths": [list(p) for p in expected]}, "paths_between", 0,
            ))
        for query in [(2, 3), (6, 7, 8), (1, 2, 3, 4), (999, 1)]:
            ids = searcher.search_ids(query)
            requests.append((
                "POST", "/v1/subpath_search", {"query": list(query)}, 200,
                {"query": list(query), "ids": ids, "count": len(ids),
                 "paths": [list(p) for p in store.retrieve_many(ids)]},
                "subpath_search", 0,
            ))
        # Deliberate failures, interleaved with the successes: each counts
        # toward serve.requests and serve.errors but no endpoint counter.
        requests.append((
            "GET", "/v1/retrieve", {"id": 999}, 404, None, None, 0))
        requests.append((
            "GET", "/v1/retrieve", {"id": "x"}, 400, None, None, 0))
        requests.append(("GET", "/v1/nowhere", {}, 404, None, None, 0))
        requests.append((
            "POST", "/v1/retrieve_many", {"ids": [0, -1]}, 404, None, None, 0))
    return requests


def _fire(address, row):
    method, route, params, expected_status, expected_payload, _, _ = row
    if method == "GET":
        url = address + route + ("?" + urlencode(params) if params else "")
        status, payload = _request(url)
    else:
        status, payload = _request(
            address + route, data=json.dumps(params).encode("utf-8")
        )
    assert status == expected_status, (route, params, payload)
    if expected_payload is not None:
        assert payload == expected_payload, (route, params)
    else:
        assert "error" in payload
    return row


ROUNDS = 4  # each request in the mix is fired this many times


def test_interleaved_requests_and_metric_conservation(tmp_path):
    store_file = str(tmp_path / "archive.rpc2")
    dump_store_file(_build_store(), store_file)
    metrics_dir = str(tmp_path / "metrics")
    mix = _build_request_mix(store_file)

    workload = mix * ROUNDS
    random.Random(1234).shuffle(workload)

    server = PathServer(
        ServeConfig(store_file, port=0, workers=WORKERS, metrics_dir=metrics_dir)
    )
    server.start()
    try:
        assert server.workers_alive() == WORKERS
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            done = list(pool.map(lambda row: _fire(server.address, row), workload))
        assert len(done) == len(workload)
        # Every worker survived the interleaved stream, errors included.
        assert server.workers_alive() == WORKERS
    finally:
        server.stop()
    assert server.workers_alive() == 0

    # -- conservation across the per-worker shutdown snapshots -------------------
    snapshots = []
    for index in range(WORKERS):
        with open(server.metrics_file(index), "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        assert snapshot["worker_index"] == index
        snapshots.append(snapshot)
    pids = {snapshot["pid"] for snapshot in snapshots}
    assert len(pids) == WORKERS  # distinct processes, not one worker thrice

    def fleet_counter(name):
        return sum(
            s["metrics"]["counters"].get(name, 0) for s in snapshots
        )

    sent = len(workload)
    failures = sum(1 for row in workload if row[4] is None)
    assert fleet_counter("serve.requests") == sent
    assert fleet_counter("serve.errors") == failures

    by_endpoint = {}
    for row in workload:
        if row[5] is not None:
            by_endpoint[row[5]] = by_endpoint.get(row[5], 0) + 1
    for endpoint, count in by_endpoint.items():
        assert fleet_counter(f"serve.{endpoint}.requests") == count, endpoint

    batches = by_endpoint["retrieve_many"]
    batch_paths = sum(row[6] for row in workload)
    assert fleet_counter("serve.batches") == batches
    assert fleet_counter("serve.batch_paths") == batch_paths

    # Timer observation counts obey the same conservation as the counters.
    fleet_timed = sum(
        s["metrics"]["timers"]
        .get("serve.request.seconds", {"count": 0})["count"]
        for s in snapshots
    )
    assert fleet_timed == sent


def test_multiple_workers_actually_share_the_load(tmp_path):
    """With many keep-alive-free clients, more than one worker answers.

    Not a scheduling guarantee in general, but with 60 sequential
    connections against a 3-worker accept queue the odds of one worker
    taking every single one are (1/3)**59 — vanishing.  The healthz
    payload names the answering worker, which is how we observe the
    spread.
    """
    store_file = str(tmp_path / "archive.rpc2")
    dump_store_file(_build_store(), store_file)
    with PathServer(ServeConfig(store_file, port=0, workers=WORKERS)) as server:
        seen = set()
        for _ in range(60):
            status, body = _request(server.address + "/healthz")
            assert status == 200
            seen.add(body["worker"]["pid"])
            if len(seen) > 1:
                break
        assert len(seen) > 1
