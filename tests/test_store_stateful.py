"""Stateful property testing of the compressed store and its index.

Hypothesis drives arbitrary interleavings of the store's operations —
append, retrieve, partial retrieval, index refresh, serialize/reload —
against a plain-list model.  Whatever the sequence, the store must agree
with the model and the index must agree with a brute-force scan.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.serialize import dumps_store, loads_store
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable

# A fixed table over a small universe keeps the machine fast while still
# exercising supernode expansion (ids < 100 are vertices, >= 100 supernodes).
TABLE = SupernodeTable(100, [(1, 2, 3), (4, 5), (2, 3, 4, 5), (7, 8, 9)])

path_strategy = st.lists(
    st.integers(min_value=0, max_value=99), min_size=1, max_size=12
).map(tuple)


class StoreMachine(RuleBasedStateMachine):
    paths = Bundle("paths")

    @initialize()
    def setup(self):
        self.store = CompressedPathStore(TABLE)
        self.model = []

    # -- operations ------------------------------------------------------------

    @rule(target=paths, path=path_strategy)
    def append(self, path):
        pid = self.store.append(path)
        self.model.append(path)
        assert pid == len(self.model) - 1
        return pid

    @rule(pid=paths)
    def retrieve(self, pid):
        assert self.store.retrieve(pid) == self.model[pid]

    @rule(seed=st.integers(0, 5))
    def retrieve_fraction(self, seed):
        if not self.model:
            return
        out = self.store.retrieve_fraction(0.5, seed=seed)
        assert all(p in self.model for p in out)

    @rule()
    def serialize_roundtrip(self):
        restored = loads_store(dumps_store(self.store))
        assert restored.retrieve_all() == self.model

    @rule(vertex=st.integers(0, 99))
    def index_agrees_with_brute_force(self, vertex):
        from repro.queries.index import VertexIndex

        index = VertexIndex(self.store)
        expected = [i for i, p in enumerate(self.model) if vertex in p]
        assert index.paths_containing(vertex) == expected

    @rule(query=st.lists(st.integers(0, 99), min_size=2, max_size=4).map(tuple))
    def subpath_search_agrees(self, query):
        from repro.queries.subpath_search import SubpathSearcher

        if not self.model:
            return
        searcher = SubpathSearcher(self.store)
        expected = [
            i for i, p in enumerate(self.model)
            if any(tuple(p[j:j + len(query)]) == query
                   for j in range(len(p) - len(query) + 1))
        ]
        assert searcher.search_ids(query) == expected

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def store_and_model_agree_in_size(self):
        assert len(self.store) == len(self.model)

    @invariant()
    def full_decompression_matches_model(self):
        assert self.store.retrieve_all() == self.model


StoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestStoreStateful = StoreMachine.TestCase
