"""Unit tests for the standalone experiment runner."""

import pytest

from repro.bench.runner import EXPERIMENTS, main, run_experiments
from repro.bench.harness import BenchConfig


TINY = BenchConfig(size="tiny", sample_exponent=0)


class TestRegistry:
    def test_every_paper_artifact_present(self):
        names = set(EXPERIMENTS)
        assert "table3" in names
        assert "fig5_comparison" in names
        for prefix in ("fig4_iterations_", "fig4_sampling_"):
            assert sum(1 for n in names if n.startswith(prefix)) == 4
        for fig6 in ("fig6_decompression", "fig6_partial", "fig6_scalability"):
            assert fig6 in names
        assert {"ablation_matchers", "ablation_measure", "ablation_params"} <= names


class TestRunExperiments:
    def test_filtered_run(self):
        sections = run_experiments(TINY, only=["table3"])
        assert len(sections) == 1
        assert "== table3 ==" in sections[0]
        assert "shape:" in sections[0]

    def test_chart_rendered_for_figures(self):
        sections = run_experiments(TINY, only=["fig6_scalability"])
        assert "* CR" in sections[0]  # the ASCII chart legend

    def test_prefix_filter(self):
        sections = run_experiments(TINY, only=["ablation_me"])
        assert len(sections) == 1
        assert "ablation_measure" in sections[0]


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out

    def test_no_match_fails(self, capsys):
        assert main(["--only", "nonexistent"]) == 1
        assert "no experiments matched" in capsys.readouterr().err

    def test_run_and_write_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        code = main(["--size", "tiny", "--only", "table3", "--out", str(out_file)])
        assert code == 0
        assert "== table3 ==" in out_file.read_text()
        assert "== table3 ==" in capsys.readouterr().out
