"""The metric/span name catalog: closed set, duplicate-proof, queryable."""

import pytest

from repro.obs import catalog
from repro.obs.catalog import (
    DuplicateNameError,
    UnknownNameError,
    is_registered,
    metric_names,
    probe_counter_names,
    span_names,
)


class TestRegistration:
    def test_duplicate_metric_name_is_a_hard_error(self):
        catalog._counter("test.duplicate.probe")
        with pytest.raises(DuplicateNameError):
            catalog._counter("test.duplicate.probe")

    def test_duplicate_across_kinds_is_still_an_error(self):
        catalog._gauge("test.duplicate.kinds")
        with pytest.raises(DuplicateNameError):
            catalog._timer("test.duplicate.kinds")

    def test_duplicate_span_name_is_a_hard_error(self):
        catalog._span("test.duplicate.span")
        with pytest.raises(DuplicateNameError):
            catalog._span("test.duplicate.span")


class TestQueries:
    def test_every_constant_is_registered(self):
        assert is_registered(catalog.COMPRESS_PATHS)
        assert is_registered(catalog.SPAN_BUILD)
        assert not is_registered("never.registered")

    def test_metric_names_carry_kinds(self):
        kinds = metric_names()
        assert kinds[catalog.COMPRESS_PATHS] == "counter"
        assert kinds[catalog.BUILD_TABLE_ENTRIES] == "gauge"
        assert kinds[catalog.BUILD_SECONDS] == "timer"

    def test_span_names_is_a_closed_set(self):
        assert catalog.SPAN_COMPRESS in span_names()
        assert catalog.SPAN_STORE_INGEST in span_names()


class TestProbePrefixes:
    def test_known_prefixes_resolve_to_registered_counters(self):
        for prefix in catalog.PROBE_PREFIXES:
            probes, hashed = probe_counter_names(prefix)
            assert probes == f"{prefix}.probes"
            assert hashed == f"{prefix}.hashed_vertices"
            assert is_registered(probes) and is_registered(hashed)

    def test_unknown_prefix_is_rejected(self):
        with pytest.raises(UnknownNameError):
            probe_counter_names("rogue")
