"""Unit tests for PathDataset and its Table III statistics."""

import pytest

from repro.paths.dataset import PathDataset


@pytest.fixture()
def ds():
    return PathDataset([[1, 2, 3], [2, 3, 4, 5], [9, 1]], name="t")


class TestContainer:
    def test_len(self, ds):
        assert len(ds) == 3

    def test_getitem(self, ds):
        assert ds[1] == (2, 3, 4, 5)

    def test_iteration_preserves_order(self, ds):
        assert list(ds) == [(1, 2, 3), (2, 3, 4, 5), (9, 1)]

    def test_paths_are_tuples(self, ds):
        assert all(isinstance(p, tuple) for p in ds)

    def test_equality(self, ds):
        assert ds == PathDataset([[1, 2, 3], [2, 3, 4, 5], [9, 1]])
        assert ds != PathDataset([[1, 2, 3]])


class TestStats:
    def test_table3_columns(self, ds):
        stats = ds.stats()
        assert stats.path_number == 3
        assert stats.node_number == 9
        assert stats.id_number == 6  # {1,2,3,4,5,9}
        assert stats.max_length == 4
        assert stats.avg_length == pytest.approx(3.0)

    def test_empty_dataset_stats(self):
        stats = PathDataset([]).stats()
        assert stats.path_number == 0
        assert stats.node_number == 0
        assert stats.max_length == 0
        assert stats.avg_length == 0.0

    def test_as_row_rounds_average(self, ds):
        row = ds.stats().as_row()
        assert row[0] == "t"
        assert row[-1] == 3.0

    def test_max_vertex_id(self, ds):
        assert ds.max_vertex_id() == 9

    def test_max_vertex_id_empty(self):
        assert PathDataset([]).max_vertex_id() == -1

    def test_node_count(self, ds):
        assert ds.node_count() == 9


class TestSampling:
    def test_sample_every_stride(self):
        ds = PathDataset([[i, i + 1] for i in range(10)])
        sampled = ds.sample_every(3)
        assert [p[0] for p in sampled] == [0, 3, 6, 9]

    def test_sample_every_one_is_identity(self, ds):
        assert list(ds.sample_every(1)) == list(ds)

    def test_sample_every_invalid(self, ds):
        with pytest.raises(ValueError):
            ds.sample_every(0)

    def test_sample_fraction_size(self):
        ds = PathDataset([[i, i + 1] for i in range(100)])
        assert len(ds.sample_fraction(0.25)) == 25

    def test_sample_fraction_deterministic(self):
        ds = PathDataset([[i, i + 1] for i in range(100)])
        assert list(ds.sample_fraction(0.3, seed=7)) == list(ds.sample_fraction(0.3, seed=7))

    def test_sample_fraction_full_is_same_object(self, ds):
        assert ds.sample_fraction(1.0) is ds

    def test_sample_fraction_bounds(self, ds):
        with pytest.raises(ValueError):
            ds.sample_fraction(0.0)
        with pytest.raises(ValueError):
            ds.sample_fraction(1.5)

    def test_sample_fraction_subset(self):
        ds = PathDataset([[i, i + 1] for i in range(50)])
        sampled = set(ds.sample_fraction(0.2, seed=3))
        assert sampled <= set(ds)

    def test_head(self, ds):
        assert list(ds.head(2)) == [(1, 2, 3), (2, 3, 4, 5)]


class TestConcat:
    def test_concat_preserves_order(self):
        a = PathDataset([[1, 2]], name="a")
        b = PathDataset([[3, 4]], name="b")
        merged = PathDataset.concat([a, b])
        assert list(merged) == [(1, 2), (3, 4)]
        assert merged.name == "a+b"

    def test_concat_with_name(self):
        merged = PathDataset.concat([PathDataset([[1, 2]])], name="x")
        assert merged.name == "x"
