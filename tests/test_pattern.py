"""Unit and property tests for waypoint/wildcard path patterns."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.queries.pattern import ANY, GAP, PathPattern, PatternSearcher, match_pattern
from repro.workloads.registry import make_dataset


class TestMatchPattern:
    def test_exact(self):
        assert match_pattern((1, 2, 3), (1, 2, 3))
        assert not match_pattern((1, 2, 3), (1, 2))
        assert not match_pattern((1, 2), (1, 2, 3))

    def test_any_is_exactly_one(self):
        assert match_pattern((1, 9, 3), (1, ANY, 3))
        assert not match_pattern((1, 9, 9, 3), (1, ANY, 3))
        assert not match_pattern((1, 3), (1, ANY, 3))

    def test_gap_is_zero_or_more(self):
        assert match_pattern((1, 3), (1, GAP, 3))
        assert match_pattern((1, 9, 9, 9, 3), (1, GAP, 3))
        assert not match_pattern((1, 9, 9), (1, GAP, 3))

    def test_leading_and_trailing_gaps(self):
        assert match_pattern((7, 8, 1, 2, 9), (GAP, 1, 2, GAP))
        assert match_pattern((1, 2), (GAP, 1, 2, GAP))

    def test_multiple_gaps_with_backtracking(self):
        # The first gap must not swallow the 5 the second literal needs.
        assert match_pattern((1, 5, 2, 5, 3), (1, GAP, 5, GAP, 3))
        assert not match_pattern((1, 2, 3), (1, GAP, 5, GAP, 3))

    def test_gap_only_pattern(self):
        assert match_pattern((), (GAP,))
        assert match_pattern((1, 2, 3), (GAP,))

    def test_empty_path_against_literal(self):
        assert not match_pattern((), (1,))

    def test_repeated_vertex_backtracking(self):
        # Classic glob pitfall: GAP must backtrack past an early partial hit.
        assert match_pattern((1, 2, 2, 2, 3), (GAP, 2, 2, 3))


class TestPathPattern:
    def test_doctest_examples(self):
        assert PathPattern([1, GAP, 5]).matches((1, 2, 3, 5))
        assert not PathPattern([1, ANY, 5]).matches((1, 2, 3, 5))

    def test_containing(self):
        pattern = PathPattern.containing([2, 3])
        assert pattern.matches((1, 2, 3, 4))
        assert not pattern.matches((1, 3, 2, 4))

    def test_via(self):
        pattern = PathPattern.via(1, [5], 9)
        assert pattern.matches((1, 2, 5, 7, 9))
        assert pattern.matches((1, 5, 9))
        assert not pattern.matches((1, 2, 9))     # waypoint missing
        assert not pattern.matches((0, 1, 5, 9))  # wrong source

    def test_concrete_vertices(self):
        assert PathPattern([1, GAP, ANY, 5]).concrete_vertices == (1, 5)

    def test_consecutive_gaps_collapse(self):
        assert PathPattern([1, GAP, GAP, 2]).elements == (1, GAP, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PathPattern([])
        with pytest.raises(ValueError):
            PathPattern([1, -2])
        with pytest.raises(ValueError):
            PathPattern([1, "x"])


class TestPatternSearcher:
    @pytest.fixture(scope="class")
    def setup(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
        store = CompressedPathStore.from_codec(dataset, codec)
        return dataset, PatternSearcher(store)

    def test_via_matches_brute_force(self, setup):
        dataset, searcher = setup
        host = dataset[4]
        src, way, dst = host[0], host[len(host) // 2], host[-1]
        pattern = PathPattern.via(src, [way], dst)
        expected = [i for i, p in enumerate(dataset) if pattern.matches(p)]
        assert searcher.search_ids(pattern) == expected
        assert searcher.paths_via(src, [way], dst) == [dataset[i] for i in expected]

    def test_containing_matches_brute_force(self, setup):
        dataset, searcher = setup
        fragment = tuple(dataset[7][2:5])
        pattern = PathPattern.containing(fragment)
        expected = [i for i, p in enumerate(dataset) if pattern.matches(p)]
        assert searcher.search_ids(pattern) == expected

    def test_wildcard_only_pattern_scans_everything(self, setup):
        dataset, searcher = setup
        length = len(dataset[0])
        pattern = PathPattern([ANY] * length)
        expected = [i for i, p in enumerate(dataset) if len(p) == length]
        assert searcher.search_ids(pattern) == expected

    def test_no_match(self, setup):
        _, searcher = setup
        assert searcher.search_ids(PathPattern([10**9, GAP, 10**9 + 1])) == []


@settings(max_examples=80)
@given(
    path=st.lists(st.integers(0, 6), max_size=10).map(tuple),
    pattern=st.lists(
        st.one_of(st.integers(0, 6), st.just(ANY), st.just(GAP)),
        min_size=1, max_size=6,
    ),
)
def test_match_agrees_with_regex_oracle(path, pattern):
    """Glob matching must agree with a regex built from the same pattern."""
    import re

    parts = []
    for element in pattern:
        if element is ANY:
            parts.append("x[0-9]+,")
        elif element is GAP:
            parts.append("(x[0-9]+,)*")
        else:
            parts.append(f"x{element},")
    text = "".join(f"x{v}," for v in path)
    oracle = re.fullmatch("".join(parts), text) is not None
    assert match_pattern(path, tuple(pattern)) == oracle
