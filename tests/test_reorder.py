"""Vertex reordering: the order registry, persistence, and store wiring.

Three layers of guarantees:

* **VertexOrder** is a checked bijection — apply/invert round-trip on every
  strategy (property-based), serialization survives ``to_bytes`` /
  ``from_bytes``, and corrupt bodies are rejected loudly.
* **Persistence** — an ordered v2 archive carries the RPOT section behind a
  header flag; unordered archives are byte-identical to what pre-flag
  writers produced, so old readers never notice the feature exists.
* **Differential** — a reordered store (in-memory, mapped, sharded) answers
  the *entire* query surface (`retrieve`/`retrieve_slice`/`paths_between`/
  `subpath_search`) value-identically to the unordered store, in original
  ids.  Reordering must be invisible to every reader.
"""

import random
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import OFFSConfig
from repro.core.errors import CorruptDataError, InvalidInputError
from repro.core.mapped import MappedPathStore
from repro.core.offs import OFFSCodec
from repro.core.serialize import (
    ORDER_SECTION_MAGIC,
    STORE_V2_FLAG_ORDER,
    append_order_section,
    dumps_order_section,
    dumps_store,
    loads_order_section,
    dumps_store_v2,
    loads_store_v2,
    parse_store_v2_header,
)
from repro.core.store import CompressedPathStore
from repro.paths.dataset import PathDataset
from repro.paths.remap import FrequencyRemapper
from repro.paths.reorder import (
    ORDER_STRATEGIES,
    VertexOrder,
    fit_order,
    order_entropy_bits,
    varint_bytes_saved,
)

NON_IDENTITY = tuple(s for s in ORDER_STRATEGIES if s != "identity")


def _workload(seed=0, paths=60):
    """A skewed workload: a hot backbone subpath plus random traffic."""
    rng = random.Random(seed)
    hot = [1000, 1001, 1002, 1003]
    out = []
    for i in range(paths):
        p = [rng.randrange(900, 1100) for _ in range(rng.randrange(3, 9))]
        if i % 3 == 0:
            cut = rng.randrange(len(p) + 1)
            p = p[:cut] + hot + p[cut:]
        out.append(tuple(p))
    return out


# -- the order object ------------------------------------------------------------


class TestVertexOrder:
    def test_bijection_and_application(self):
        order = VertexOrder("frequency", [30, 10, 20])
        assert len(order) == 3
        assert order.apply_vertex(30) == 0
        assert order.invert_vertex(0) == 30
        assert order.apply_path((10, 20, 30)) == (1, 2, 0)
        assert order.invert_path((1, 2, 0)) == (10, 20, 30)

    def test_unknown_vertex_raises(self):
        order = VertexOrder("frequency", [5, 6])
        with pytest.raises(InvalidInputError):
            order.apply_vertex(7)
        with pytest.raises(InvalidInputError):
            order.apply_path((5, 7))
        with pytest.raises(InvalidInputError):
            order.invert_vertex(2)
        with pytest.raises(InvalidInputError):
            order.invert_path((0, 2))

    def test_rejects_bad_maps(self):
        with pytest.raises(InvalidInputError):
            VertexOrder("frequency", [1, 1])
        with pytest.raises(InvalidInputError):
            VertexOrder("frequency", [-1])
        with pytest.raises(InvalidInputError):
            VertexOrder("nope", [0, 1])

    def test_table_round_trip(self):
        order = VertexOrder("bfs", [4, 2, 9])
        again = VertexOrder.from_table("bfs", order.as_table())
        assert again == order

    def test_bytes_round_trip(self):
        order = VertexOrder("locality", [300, 5, 129, 0])
        again = VertexOrder.from_bytes(order.to_bytes())
        assert again == order
        assert again.strategy == "locality"

    def test_from_bytes_rejects_identity_and_garbage(self):
        body = VertexOrder("frequency", [1, 0]).to_bytes()
        with pytest.raises(CorruptDataError):
            VertexOrder.from_bytes(body + b"\x00")  # trailing byte
        with pytest.raises(CorruptDataError):
            VertexOrder.from_bytes(body[:-1])  # truncated varint
        with pytest.raises(CorruptDataError):
            VertexOrder.from_bytes(b"\x08identity\x00")
        with pytest.raises(CorruptDataError):
            VertexOrder.from_bytes(b"")

    def test_size_bytes_counts_varints(self):
        # count marker (1) + ids 0,127 (1 byte each) + 128 (2 bytes) = 5
        order = VertexOrder("frequency", [0, 127, 128])
        assert order.size_bytes() == 1 + 1 + 1 + 2

    def test_transform_corpus_relabels(self):
        from repro.core.flatcorpus import FlatCorpus

        corpus = FlatCorpus.from_paths([(10, 20), (20, 30)], name="w")
        order = VertexOrder("frequency", [20, 10, 30])
        out = order.transform_corpus(corpus)
        assert [tuple(p) for p in out] == [(1, 0), (0, 2)]
        assert out.name.endswith("/frequency")


# -- fitting ---------------------------------------------------------------------


class TestFitting:
    def test_identity_returns_none(self):
        assert fit_order("identity", _workload()) is None

    def test_unknown_strategy_raises(self):
        with pytest.raises(InvalidInputError):
            fit_order("alphabetical", _workload())

    @pytest.mark.parametrize("strategy", NON_IDENTITY)
    def test_covers_every_vertex(self, strategy):
        paths = _workload()
        order = fit_order(strategy, paths)
        seen = {v for p in paths for v in p}
        assert len(order) == len(seen)
        for v in seen:
            assert order.invert_vertex(order.apply_vertex(v)) == v

    @pytest.mark.parametrize("strategy", NON_IDENTITY)
    def test_deterministic(self, strategy):
        paths = _workload(seed=3)
        assert fit_order(strategy, paths) == fit_order(strategy, paths)

    def test_frequency_puts_hottest_first(self):
        order = fit_order("frequency", [(7, 8, 7), (7, 9, 8)])
        assert order.apply_vertex(7) == 0   # count 3
        assert order.apply_vertex(8) == 1   # count 2
        assert order.apply_vertex(9) == 2   # count 1

    def test_frequency_ties_break_on_smaller_id(self):
        order = fit_order("frequency", [(5, 3), (3, 5)])
        assert order.apply_vertex(3) == 0
        assert order.apply_vertex(5) == 1

    def test_bfs_keeps_neighbors_adjacent(self):
        # Two disjoint components; BFS numbers each contiguously.
        order = fit_order("bfs", [(1, 2, 3)] * 3 + [(50, 51)])
        ids_a = sorted(order.apply_vertex(v) for v in (1, 2, 3))
        ids_b = sorted(order.apply_vertex(v) for v in (50, 51))
        assert ids_a == [0, 1, 2]
        assert ids_b == [3, 4]

    def test_entropy_and_bytes_saved(self):
        paths = [(200,) * 9 + (1000,)]
        assert order_entropy_bits({200: 9, 1000: 1}) == pytest.approx(0.469, abs=1e-3)
        order = fit_order("frequency", paths)
        # 200 (2-byte varint) -> id 0 (1 byte) x9 occurrences saves 9;
        # 1000 (2 bytes) -> id 1 (1 byte) saves 1.
        assert varint_bytes_saved(order, paths) == 10
        assert varint_bytes_saved(None, paths) == 0

    @pytest.mark.parametrize("strategy", NON_IDENTITY)
    def test_fit_publishes_observability(self, strategy):
        from repro.obs import catalog
        from repro.obs.runtime import instrumented

        with instrumented() as obs:
            fit_order(strategy, _workload())
        metrics = obs.registry.as_dict()
        assert metrics["gauges"]["reorder.vertices"] > 0
        assert catalog.REORDER_FIT_SECONDS in metrics["timers"]


# -- property tests --------------------------------------------------------------


paths_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=12),
    min_size=1,
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(paths=paths_strategy, strategy=st.sampled_from(NON_IDENTITY))
def test_apply_invert_round_trip_property(paths, strategy):
    paths = [tuple(p) for p in paths]
    order = fit_order(strategy, paths)
    for p in paths:
        assert order.invert_path(order.apply_path(p)) == p
    assert VertexOrder.from_bytes(order.to_bytes()) == order


# -- persistence in the archive --------------------------------------------------


def _stores(reorder, paths=None):
    ds = PathDataset(paths or _workload(), name="w")
    codec = OFFSCodec(
        OFFSConfig(iterations=2, sample_exponent=0, reorder=reorder)
    ).fit(ds.to_flat())
    store = CompressedPathStore.from_corpus(
        ds.to_flat(), codec.table, order=codec.order
    )
    return ds, codec, store


class TestArchivePersistence:
    @pytest.mark.parametrize("strategy", NON_IDENTITY)
    def test_v2_round_trip(self, strategy):
        ds, codec, store = _stores(strategy)
        blob = dumps_store_v2(store)
        header = parse_store_v2_header(blob)
        assert header.has_order
        mapped = loads_store_v2(blob)
        assert mapped.order == codec.order
        assert mapped.retrieve_all() == [tuple(p) for p in ds]

    def test_unordered_blob_is_byte_identical_to_pre_flag_writer(self):
        ds, _, store = _stores("identity")
        blob = dumps_store_v2(store)
        header = parse_store_v2_header(blob)
        assert not header.has_order
        assert header.flags == 0
        assert loads_store_v2(blob).order is None

    def test_v1_refuses_ordered_store(self):
        _, _, store = _stores("frequency")
        with pytest.raises(InvalidInputError):
            dumps_store(store)

    def test_append_order_section(self):
        ds, _, plain = _stores("identity")
        order = fit_order("frequency", [tuple(p) for p in ds])
        # The section is appended to a store whose tokens are already in
        # new-id space — rebuild the payload from the transformed corpus.
        codec = OFFSCodec(
            OFFSConfig(iterations=2, sample_exponent=0, reorder="frequency")
        ).fit(ds.to_flat())
        unordered_blob = dumps_store_v2(
            CompressedPathStore.from_corpus(
                order.transform_corpus(ds.to_flat()), codec.table
            )
        )
        stamped = append_order_section(unordered_blob, order)
        assert stamped[: len(unordered_blob)] != unordered_blob  # CRC + flag differ
        assert ORDER_SECTION_MAGIC in stamped
        mapped = loads_store_v2(stamped)
        assert mapped.order == order
        assert mapped.retrieve_all() == [tuple(p) for p in ds]
        # None order is a no-op; double-stamping is an error.
        assert append_order_section(unordered_blob, None) == unordered_blob
        with pytest.raises(InvalidInputError):
            append_order_section(stamped, order)

    def test_loads_order_section_round_trip(self):
        ds, _, _ = _stores("identity")
        order = fit_order("frequency", [tuple(p) for p in ds])
        section = dumps_order_section(order)
        assert loads_order_section(section) == order

    def test_loads_order_section_rejects_damage(self):
        ds, _, _ = _stores("identity")
        order = fit_order("frequency", [tuple(p) for p in ds])
        section = dumps_order_section(order)
        with pytest.raises(CorruptDataError):
            loads_order_section(b"XXXX" + section[4:])  # bad magic
        with pytest.raises(CorruptDataError):
            loads_order_section(section[:-1])  # truncated body
        with pytest.raises(CorruptDataError):
            loads_order_section(section + b"\x00")  # trailing bytes
        with pytest.raises(CorruptDataError):
            loads_order_section(section[:5])  # shorter than the prefix
        flipped = bytearray(section)
        flipped[-1] ^= 0xFF
        with pytest.raises(CorruptDataError):
            loads_order_section(bytes(flipped))  # body CRC mismatch

    def test_corrupt_order_body_detected(self):
        _, _, store = _stores("frequency")
        blob = bytearray(dumps_store_v2(store))
        header = parse_store_v2_header(bytes(blob))
        blob[header.order_body_offset] ^= 0xFF
        mapped = loads_store_v2(bytes(blob))
        with pytest.raises(CorruptDataError):
            mapped.order

    def test_truncated_order_section_detected(self):
        _, _, store = _stores("frequency")
        blob = dumps_store_v2(store)
        with pytest.raises(CorruptDataError):
            parse_store_v2_header(blob[:-3])

    def test_unknown_flag_bits_rejected(self):
        _, _, store = _stores("identity")
        blob = bytearray(dumps_store_v2(store))
        blob[5] |= 0x80  # a flag this build does not know
        blob[60:64] = struct.pack("<I", zlib.crc32(bytes(blob[:60])))
        with pytest.raises(CorruptDataError):
            parse_store_v2_header(bytes(blob))

    @pytest.mark.parametrize("strategy", NON_IDENTITY)
    def test_ordered_cr_charges_for_the_mapping(self, strategy):
        _, codec, store = _stores(strategy)
        # Same table and tokens without the order: the ordered store's size
        # must exceed it by exactly the persisted mapping's byte cost, so
        # CR cannot silently omit the data a reader needs.
        from repro.paths.encoding import DEFAULT_ENCODING, VarintEncoding

        bare = CompressedPathStore.from_tokens(store.table, store.tokens())
        for enc in (DEFAULT_ENCODING, VarintEncoding()):
            assert (
                store.compressed_size_bytes(enc)
                == bare.compressed_size_bytes(enc) + codec.order.size_bytes(enc)
            )


# -- differential: reordering is invisible to every reader -----------------------


class TestDifferential:
    @pytest.fixture(scope="class", params=NON_IDENTITY)
    def pair(self, request):
        paths = _workload(seed=11, paths=80)
        ds = PathDataset(paths, name="w")
        plain_codec = OFFSCodec(
            OFFSConfig(iterations=2, sample_exponent=0)
        ).fit(ds.to_flat())
        plain = CompressedPathStore.from_corpus(ds.to_flat(), plain_codec.table)
        codec = OFFSCodec(
            OFFSConfig(iterations=2, sample_exponent=0, reorder=request.param)
        ).fit(ds.to_flat())
        ordered = CompressedPathStore.from_corpus(
            ds.to_flat(), codec.table, order=codec.order
        )
        return paths, plain, ordered

    def test_retrieve_surface(self, pair):
        paths, plain, ordered = pair
        assert ordered.retrieve_all() == plain.retrieve_all() == list(paths)
        for pid in (0, 7, len(paths) - 1):
            assert ordered.retrieve(pid) == plain.retrieve(pid)
            assert ordered.retrieve_slice(pid, 1, 3) == plain.retrieve_slice(pid, 1, 3)

    def test_mapped_retrieve_surface(self, pair):
        paths, _, ordered = pair
        mapped = loads_store_v2(dumps_store_v2(ordered))
        assert mapped.retrieve_all() == list(paths)
        assert mapped.retrieve_batch([0, 3, 5]) == [paths[0], paths[3], paths[5]]
        assert mapped.retrieve_slice(2, 0, 2) == paths[2][0:2]

    def test_query_surface(self, pair):
        paths, plain, ordered = pair
        from repro.queries.retrieval import PathQueryEngine
        from repro.queries.subpath_search import SubpathSearcher

        plain_engine = PathQueryEngine(plain)
        ordered_engine = PathQueryEngine(ordered)
        for vertex in (1000, 1003, 950, 424242):  # last one absent
            assert (
                ordered_engine.affected_paths(vertex)
                == plain_engine.affected_paths(vertex)
            )
        terminals = {(p[0], p[-1]) for p in paths}
        for src, dst in sorted(terminals)[:5]:
            assert ordered_engine.paths_between(src, dst) == plain_engine.paths_between(
                src, dst
            )
        for query in ((1000, 1001, 1002), (1001, 1002, 1003), (424242, 1)):
            assert (
                SubpathSearcher(ordered).search(query)
                == SubpathSearcher(plain).search(query)
            )

    def test_sharded_query_surface(self, pair, tmp_path):
        paths, plain, ordered = pair
        from repro.core.sharded import ShardedPathStore, build_sharded_store
        from repro.queries.subpath_search import SubpathSearcher

        manifest = str(tmp_path / "store.rpsm")
        build_sharded_store(
            PathDataset(paths, name="w").to_flat(),
            ordered.table,
            manifest,
            shards=2,
            order=ordered.order,
        )
        with ShardedPathStore.open(manifest) as sharded:
            assert sharded.order == ordered.order
            assert sharded.retrieve_all() == list(paths)
            assert sharded.affected_paths(1000) == [
                paths[i] for i in range(len(paths)) if 1000 in paths[i]
            ]
            sub = sharded.subpath_search((1000, 1001, 1002))
            assert sub == SubpathSearcher(plain).search((1000, 1001, 1002))

    @pytest.mark.parametrize("strategy", NON_IDENTITY)
    def test_append_goes_through_the_order(self, strategy):
        _, codec, store = _stores(strategy)
        before = len(store)
        store.append((1000, 1001, 1002))
        assert store.retrieve(before) == (1000, 1001, 1002)


# -- satellite regressions -------------------------------------------------------


class TestFrequencyRemapperTieBreak:
    def test_iteration_order_cannot_change_the_mapping(self):
        # Same multiset of paths, two different iteration orders: ties in
        # the frequency sort must break on vertex id, never input order.
        paths_a = [(9, 5), (5, 9), (7, 3)]
        paths_b = [(7, 3), (5, 9), (9, 5)]
        a = FrequencyRemapper.fit(paths_a)
        b = FrequencyRemapper.fit(paths_b)
        assert a.as_table() == b.as_table()
        # 5 and 9 tie at count 2 -> the smaller original id takes id 0.
        assert a.as_table()[0][0] == 5


class TestPreprocessIdMapping:
    def test_mapping_threads_out_and_inverts(self):
        from repro.paths.preprocess import preprocess_paths

        raw = [["a", "b", "c", "b", "d"], ["c", "c", "d", "a"]]
        dataset, report = preprocess_paths(raw, assign_ids=True)
        assert report.id_mapping == {"a": 0, "b": 1, "c": 2, "d": 3}
        for path in dataset:
            labels = [report.original_label(v) for v in path]
            assert all(isinstance(x, str) for x in labels)
        assert report.original_label(0) == "a"
        with pytest.raises(KeyError):
            report.original_label(99)

    def test_without_assign_ids_mapping_is_none(self):
        from repro.paths.preprocess import preprocess_paths

        _, report = preprocess_paths([[1, 2, 3]])
        assert report.id_mapping is None
        with pytest.raises(KeyError):
            report.original_label(1)
