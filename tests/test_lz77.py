"""Unit and property tests for the from-scratch LZ77 codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.generic.lz77 import lz77_compress, lz77_decompress


class TestBasics:
    def test_empty(self):
        assert lz77_decompress(lz77_compress(b"")) == b""

    def test_short_literal_only(self):
        data = b"abc"
        assert lz77_decompress(lz77_compress(data)) == data

    def test_repetitive_data_shrinks(self):
        data = b"abcdefgh" * 100
        blob = lz77_compress(data)
        assert len(blob) < len(data) // 4
        assert lz77_decompress(blob) == data

    def test_incompressible_data_roundtrips(self):
        import random

        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(500))
        assert lz77_decompress(lz77_compress(data)) == data

    def test_overlapping_match(self):
        # Run-length-style data forces offset < length copies.
        data = b"a" * 200
        blob = lz77_compress(data)
        assert lz77_decompress(blob) == data
        assert len(blob) < 20

    def test_match_at_start_via_dictionary(self):
        zdict = b"hello world, this is the dictionary"
        data = b"hello world, this is the payload"
        with_dict = lz77_compress(data, zdict)
        without = lz77_compress(data)
        assert lz77_decompress(with_dict, zdict) == data
        assert len(with_dict) < len(without)

    def test_dictionary_mismatch_breaks_roundtrip(self):
        zdict = b"abcdefghijklmnop"
        blob = lz77_compress(b"abcdefghijklmnop!", zdict)
        wrong = lz77_decompress(blob, b"ABCDEFGHIJKLMNOP")
        assert wrong != b"abcdefghijklmnop!"


class TestErrorHandling:
    def test_truncated_stream(self):
        blob = lz77_compress(b"abcdabcdabcdabcd")
        with pytest.raises(ValueError):
            lz77_decompress(blob[:-1])

    def test_garbage_offset(self):
        # literal_len=0, offset=200 (points before any data), extra=0
        blob = bytes([0, 200, 1, 0])
        with pytest.raises(ValueError):
            lz77_decompress(blob)


@settings(max_examples=60)
@given(st.binary(max_size=600))
def test_roundtrip_property(data):
    assert lz77_decompress(lz77_compress(data)) == data


@settings(max_examples=40)
@given(st.binary(max_size=300), st.binary(max_size=200))
def test_roundtrip_with_dictionary_property(data, zdict):
    assert lz77_decompress(lz77_compress(data, zdict), zdict) == data


@settings(max_examples=30)
@given(st.lists(st.sampled_from([b"abcd", b"wxyz", b"1234"]), max_size=50))
def test_structured_data_roundtrip_and_shrinks(chunks):
    data = b"".join(chunks)
    blob = lz77_compress(data)
    assert lz77_decompress(blob) == data
    if len(data) > 64:
        assert len(blob) < len(data)
