# Convenience targets for the OFFS reproduction.

.PHONY: install test lint lint-changed bench bench-quick bench-smoke bench-serve bench-shard bench-ablation bench-ablation-quick bench-reorder bench-check examples experiments clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Dependency-free lint: byte-compile every tree (catches syntax errors),
# import the public packages (catches broken imports / circulars), then run
# the project's own static analyzer (OFFS invariants R001-R010; exit 1 on
# any non-baselined finding -- see docs/static-analysis.md).
lint:
	python -m compileall -q src tests benchmarks examples
	PYTHONPATH=src python -c "import repro, repro.obs, repro.cli, repro.bench.runner"
	PYTHONPATH=src python -m repro.lint --format json

# Fast pre-commit pass: only files changed vs HEAD (plus untracked);
# falls back to a full scan outside a git checkout.
lint-changed:
	PYTHONPATH=src python -m repro.lint --changed --strict

bench:
	pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SIZE=small pytest benchmarks/ --benchmark-only

# Tiny fig5-style speed check (seed loop vs flat rolling batch) that
# emits a single JSON blob; CI archives it as a non-blocking artifact.
bench-smoke:
	PYTHONPATH=src python benchmarks/smoke.py --size tiny --out BENCH_smoke.json

# Serving-layer load sweep (qps / p50 / p99 per worker count) against a
# live pre-forked PathServer; CI archives the JSON as a non-blocking artifact.
bench-serve:
	PYTHONPATH=src python benchmarks/bench_serve.py --size small --out BENCH_serve.json

# Sharded write path: parallel build speedup (wall + projected), streaming
# ingest peak-RSS flatness at 1x/2x/4x the medium tier, and the
# monolithic-vs-sharded crossover; CI archives the JSON as a non-blocking
# artifact.
bench-shard:
	PYTHONPATH=src python benchmarks/bench_shard.py --size medium --out BENCH_shard.json

# Component-ablation matrix (baseline + one cell per knob value, per
# workload) with the ranked importance report autotune consumes; resumable
# via BENCH_ablation.json.partial.  The quick variant is the CI-sized run.
bench-ablation:
	PYTHONPATH=src python benchmarks/bench_ablation.py --size small --out BENCH_ablation.json

bench-ablation-quick:
	PYTHONPATH=src python benchmarks/bench_ablation.py --size tiny --rounds 1 --out BENCH_ablation.json

# Vertex-reordering grid: every ordering strategy on every workload (CR /
# CS / DS / PDS plus varint bytes saved), each cell round-trip verified
# through a mapped v2 archive.  The deterministic keys gate in bench-check.
bench-reorder:
	PYTHONPATH=src python benchmarks/bench_reorder.py --size tiny --out BENCH_reorder.json

# Bench-regression gate: diff the fresh smoke/decode JSONs against the
# committed baselines (benchmarks/baselines/).  Correctness-derived metrics
# (round-trip flags, CR, byte sizes) must match exactly; timings only warn
# inside the tolerance band.  CI runs this inside the bench(smoke) job.
bench-check:
	python tools/bench_compare.py --baseline-dir benchmarks/baselines \
		--format gha BENCH_smoke.json BENCH_decode.json BENCH_reorder.json

experiments:
	python -m repro.bench --size medium --out experiments_report.txt

examples:
	python examples/quickstart.py
	python examples/cloud_monitoring.py
	python examples/taxi_trajectories.py
	python examples/tuning_parameters.py
	python examples/streaming_archive.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf benchmarks/results .pytest_cache .hypothesis
