#!/usr/bin/env python
"""Bench-regression gate: diff fresh bench JSONs against committed baselines.

``make bench-smoke`` (and friends) emit small JSON reports.  This tool
compares a fresh report against the committed baseline of the same name
under ``benchmarks/baselines/`` and classifies every leaf key:

* **correctness-derived** (booleans, counts, ratios of byte sizes,
  structural strings) must match the baseline **exactly** — any drift is a
  blocking regression (``::error``, exit 1).  These numbers are
  deterministic: same code + same seed = same value on every machine.
* **timing-derived** (keys ending in ``seconds``/``_per_s``/``_mbps``,
  ``speedup`` and ``*_over_*`` ratios, latency quantiles) are
  machine-dependent, so they only *warn* (``::warning``) when they drift
  beyond the tolerance band (default ±15%) — informational, never blocking.
* **environment** keys (``python``, ``platform``…) are ignored.

Usage::

    python tools/bench_compare.py --baseline-dir benchmarks/baselines \
        --format gha BENCH_smoke.json BENCH_decode.json

Exit codes: 0 = clean (possibly with timing warnings), 1 = at least one
blocking regression, 2 = usage error (missing file, invalid JSON).

``make bench-check`` wraps the invocation above; CI runs it inside the
``bench (smoke)`` matrix cell so a correctness drift blocks the merge while
a slow runner does not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, List, Optional, Tuple

#: Leaf keys that describe the machine, not the code under test.
IGNORED_KEYS = frozenset({"python", "platform", "hostname", "timestamp"})

#: Leaf-name suffixes / infixes marking a metric as timing-derived.
_TIMING_SUFFIXES = ("seconds", "_per_s", "_mbps", "_qps", "_p50", "_p95", "_p99")
_TIMING_EXACT = frozenset({"speedup", "qps", "p50", "p95", "p99"})

DEFAULT_TOLERANCE = 0.15


def is_timing_key(path: str) -> bool:
    """True when the dotted *path*'s leaf is a wall-clock-derived metric."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf in _TIMING_EXACT or "_over_" in leaf:
        return True
    return any(leaf.endswith(suffix) for suffix in _TIMING_SUFFIXES)


def flatten(payload: object, prefix: str = "") -> Iterator[Tuple[str, object]]:
    """Yield ``(dotted.path, leaf_value)`` pairs in sorted key order."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(payload[key], path)
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            yield from flatten(item, f"{prefix}[{index}]")
    else:
        yield prefix, payload


class Finding:
    """One metric-level comparison outcome."""

    __slots__ = ("severity", "file", "key", "message")

    def __init__(self, severity: str, file: str, key: str, message: str):
        self.severity = severity  # "error" | "warning"
        self.file = file
        self.key = key
        self.message = message

    def render(self, fmt: str) -> str:
        if fmt == "gha":
            # ::error title=...::message — annotates the PR check run.
            return (f"::{self.severity} title=bench-compare "
                    f"{self.file}:{self.key}::{self.message}")
        tag = "REGRESSION" if self.severity == "error" else "drift"
        return f"{tag}: {self.file}: {self.key}: {self.message}"


def compare_payloads(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    file: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Finding]:
    """All findings from comparing one fresh report to its baseline."""
    fresh_flat = dict(flatten(fresh))
    base_flat = dict(flatten(baseline))
    findings: List[Finding] = []
    for key in sorted(set(fresh_flat) | set(base_flat)):
        leaf = key.rsplit(".", 1)[-1]
        if leaf in IGNORED_KEYS:
            continue
        if key not in fresh_flat:
            findings.append(Finding(
                "error", file, key, "metric disappeared from the fresh report"))
            continue
        if key not in base_flat:
            findings.append(Finding(
                "error", file, key,
                "new metric with no committed baseline "
                "(regenerate benchmarks/baselines/)"))
            continue
        got, want = fresh_flat[key], base_flat[key]
        if is_timing_key(key):
            findings.extend(_compare_timing(file, key, got, want, tolerance))
        elif got != want:
            findings.append(Finding(
                "error", file, key,
                f"expected {want!r} (baseline), got {got!r} — "
                "correctness-derived metrics must match exactly"))
    return findings


def _compare_timing(
    file: str, key: str, got: object, want: object, tolerance: float
) -> List[Finding]:
    if not isinstance(got, (int, float)) or not isinstance(want, (int, float)):
        if got != want:
            return [Finding("error", file, key,
                            f"timing metric changed type: {want!r} -> {got!r}")]
        return []
    if want == 0:
        return []  # no meaningful relative band against a zero baseline
    rel = (got - want) / want
    if abs(rel) > tolerance:
        return [Finding(
            "warning", file, key,
            f"{want} -> {got} ({rel:+.1%}, band ±{tolerance:.0%}) — "
            "timing drift is informational")]
    return []


def compare_files(
    fresh_path: str,
    baseline_dir: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Finding]:
    """Load one fresh report and its same-named baseline, and compare."""
    baseline_path = os.path.join(baseline_dir, os.path.basename(fresh_path))
    with open(fresh_path, "r", encoding="utf-8") as fh:
        fresh = json.load(fh)
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    return compare_payloads(fresh, baseline, os.path.basename(fresh_path),
                            tolerance=tolerance)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("reports", nargs="+",
                        help="fresh bench JSON files to check")
    parser.add_argument("--baseline-dir", default="benchmarks/baselines",
                        help="directory of committed same-named baselines")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative band for timing metrics "
                             "(default %(default)s)")
    parser.add_argument("--format", choices=("text", "gha"), default="text",
                        dest="fmt",
                        help="'gha' emits ::error/::warning annotations")
    args = parser.parse_args(argv)

    findings: List[Finding] = []
    for report in args.reports:
        try:
            findings.extend(
                compare_files(report, args.baseline_dir, tolerance=args.tolerance))
        except FileNotFoundError as exc:
            print(f"bench-compare: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"bench-compare: {report}: invalid JSON: {exc}",
                  file=sys.stderr)
            return 2

    for finding in findings:
        print(finding.render(args.fmt))
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(f"bench-compare: {len(args.reports)} report(s), "
          f"{errors} regression(s), {warnings} timing drift(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
