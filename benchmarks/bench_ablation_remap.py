"""Ablation A5 — frequency-ordered id remapping under varint coding.

Storage-layer companion to OFFS: relabel vertices hottest-first so the
variable-length on-disk coding spends one byte on the ids that appear most.
Measured end to end: the same archive's serialized size with and without
the remap.
"""

from repro.core.offs import OFFSCodec
from repro.core.serialize import dumps_store
from repro.core.store import CompressedPathStore
from repro.paths.remap import FrequencyRemapper
from repro.workloads.registry import make_dataset


def test_a5_frequency_remap(benchmark, config, report):
    dataset = make_dataset("alibaba", config.size, config.seed)

    def run():
        plain_codec = OFFSCodec(config.offs_config())
        plain = CompressedPathStore.from_codec(dataset, plain_codec)
        remapper = FrequencyRemapper.fit(dataset)
        remapped_ds = remapper.transform(dataset)
        remap_codec = OFFSCodec(config.offs_config())
        remapped = CompressedPathStore.from_codec(remapped_ds, remap_codec)
        return len(dumps_store(plain)), len(dumps_store(remapped)), remapper

    plain_bytes, remapped_bytes, remapper = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ("variant", "archive bytes"),
        ("first-seen ids", plain_bytes),
        ("frequency-ordered ids", remapped_bytes),
    ]
    shape = {
        "bytes_saved_fraction": 1 - remapped_bytes / plain_bytes,
        "mapping_size": float(len(remapper)),
    }
    report(
        "ablation_a5_remap", rows, shape,
        note="Hot vertices get 1-byte varints; the archive shrinks with no "
             "change to the compression algorithm.",
    )
    # The remap must never hurt, and it measurably helps on skewed traffic.
    assert shape["bytes_saved_fraction"] >= 0.0
