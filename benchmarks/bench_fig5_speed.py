"""Figure 5b — compression speed: one pytest-benchmark row per codec.

Each benchmark times ``fit + compress`` over the alibaba surrogate — the
paper's CS measures table construction and compression together (its Exp-1
shows CS varying with the construction parameters).  Paper shape: OFFS
fastest (135 MB/s there; pure-Python absolute numbers are ~100× lower),
Dlz4 ≈ 3× slower, naive DICTs ≈ 4× slower than OFFS.
"""

import pytest

from repro.bench.harness import CODEC_FACTORIES
from repro.workloads.registry import make_dataset

CODECS = ("OFFS", "OFFS*", "Dlz4", "RSS", "GFS")


@pytest.mark.parametrize("codec_name", CODECS)
def test_fig5b_compression_speed(benchmark, config, codec_name):
    dataset = make_dataset("alibaba", config.size, config.seed)
    paths = list(dataset)

    def fit_and_compress():
        codec = CODEC_FACTORIES[codec_name](config)
        codec.fit(dataset)
        for path in paths:
            codec.compress_path(path)

    benchmark.pedantic(fit_and_compress, rounds=2, iterations=1)
