"""Figure 4 a–d — impact of the iteration count ``i`` on CR and CS.

Paper shape: CR rises rapidly while candidates grow toward δ (i ∈ [0, 3]),
then gently; CS roughly halves from i=0 to i=4 and keeps declining.  The
sweep runs on every dataset surrogate; a separate benchmark times one
default-mode table construction.
"""

import pytest

from repro.bench.experiments import exp_fig4_iterations
from repro.core.builder import TableBuilder
from repro.workloads.registry import DATASET_NAMES, make_dataset

I_VALUES = tuple(range(0, 10))


@pytest.mark.parametrize("dataset_name", DATASET_NAMES)
def test_fig4_iterations_sweep(dataset_name, config, report, benchmark):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig4_iterations(dataset_name, I_VALUES, config),
        rounds=1, iterations=1,
    )
    report(
        f"fig4_iterations_{dataset_name}", rows, shape,
        note="CR rises fast for i in [0,3], then gently; CS halves 0->4.",
        chart=(0, {"CR": 1, "CS": 2}),
    )
    # CR gained before the knee dominates what is gained after it.
    assert shape["cr_rise_to_knee"] > 0
    assert shape["cr_rise_to_knee"] > shape["cr_rise_after_knee"]
    # Later iterations cost compression speed (paper: CS halves 0 -> 4 and
    # keeps sinking; here measured as the peak-to-final decline).
    assert shape["cs_peak_over_final"] > 1.2
    assert shape["cr_final"] > 1.5


def test_fig4_table_construction_benchmark(benchmark, config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    builder = TableBuilder(config.offs_config())
    benchmark.pedantic(lambda: builder.build(dataset), rounds=3, iterations=1)
