"""Figure 4 e–h — impact of the sample exponent ``k`` on CR and CS.

Paper shape: CR decays slowly while the 1-in-2^k sample stays
representative, then sharply; CS rises steeply with k while table
construction dominates, then flattens once compression dominates.
"""

import pytest

from repro.bench.experiments import exp_fig4_sampling
from repro.core.builder import TableBuilder
from repro.workloads.registry import DATASET_NAMES, make_dataset

K_VALUES = tuple(range(0, 10))


@pytest.mark.parametrize("dataset_name", DATASET_NAMES)
def test_fig4_sampling_sweep(dataset_name, config, report, benchmark):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig4_sampling(dataset_name, K_VALUES, config),
        rounds=1, iterations=1,
    )
    report(
        f"fig4_sampling_{dataset_name}", rows, shape,
        note="CR decays slowly then sharply with k; CS rises steeply then "
             "flattens (paper: 20x from k=0 to 7, then ~2x to 15).",
        chart=(0, {"CR": 2, "CS": 3}),
    )
    # The early-k CR loss is small compared to the late-k collapse.
    assert shape["cr_loss_fast_regime"] > shape["cr_loss_slow_regime"]
    # Sampling buys substantial compression-speed gains.
    assert shape["cs_gain"] > 1.5
    assert shape["cr_at_default"] > 1.5


def test_fig4_sampled_construction_benchmark(benchmark, config):
    """Table construction at the default k (vs k=0 in the other bench)."""
    dataset = make_dataset("alibaba", config.size, config.seed)
    builder = TableBuilder(config.offs_config(sample_exponent=0))
    benchmark.pedantic(lambda: builder.build(dataset), rounds=2, iterations=1)
