"""Section II-C — the block-wise generic compression strawman, measured.

Not a paper figure, but the quantified version of the paper's motivating
claims: (1) per-path blocks destroy the generic compression ratio, (2) big
blocks compress well but make single-path retrieval pay for the whole
block.  OFFS needs neither compromise.
"""

from repro.analysis.sizing import dataset_raw_bytes
from repro.baselines.blockwise import BlockwiseZlibStore
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.workloads.registry import make_dataset

BLOCK_SIZES = (1, 16, 256)


def test_blockwise_tradeoff_table(benchmark, config, report):
    dataset = make_dataset("alibaba", config.size, config.seed)

    def run():
        rows = [("store", "CR", "paths touched per retrieval")]
        for paths_per_block in BLOCK_SIZES:
            store = BlockwiseZlibStore(paths_per_block=paths_per_block)
            store.compress_dataset(dataset)
            rows.append(
                (f"zlib blocks of {paths_per_block}",
                 round(store.compression_ratio(), 3),
                 paths_per_block)
            )
        codec = OFFSCodec(config.offs_config())
        offs_store = CompressedPathStore.from_codec(dataset, codec)
        rows.append(("OFFS", round(offs_store.compression_ratio(), 3), 1))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    cr = {row[0]: row[1] for row in rows[1:]}
    shape = {
        "per_path_blocks_cr": cr["zlib blocks of 1"],
        "big_blocks_cr": cr["zlib blocks of 256"],
        "offs_cr": cr["OFFS"],
    }
    report(
        "blockwise_strawman", rows, shape,
        note="Per-path generic blocks barely compress; big blocks compress "
             "but lose per-path retrieval. OFFS keeps both.",
    )
    assert shape["per_path_blocks_cr"] < shape["big_blocks_cr"]
    assert shape["offs_cr"] > shape["per_path_blocks_cr"]
