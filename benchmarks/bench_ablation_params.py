"""Ablation A3 — δ and β sweeps around the deployed defaults (δ=8, β=500).

Complexity analysis (Section V): δ bounds both the CR ceiling (ideal ratio
is δ) and the per-position probe cost O(δ²); β trades table size against
coverage with an interior CR optimum.  The pytest-benchmark rows time
compression across δ values.
"""

import pytest

from repro.bench.experiments import exp_ablation_params
from repro.core.offs import OFFSCodec
from repro.workloads.registry import make_dataset

DELTAS = (4, 8, 12)


def test_a3_parameter_sweep_table(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_ablation_params("alibaba", config),
        rounds=1, iterations=1,
    )
    report(
        "ablation_a3_params", rows, shape,
        note="delta lifts the CR ceiling at probe-cost expense; beta=500 "
             "sits near the table-size/coverage optimum.",
    )
    assert shape["delta8_over_delta4"] > 1.0
    assert shape["cr_beta_default"] > 1.5


@pytest.mark.parametrize("delta", DELTAS)
def test_a3_compression_cost_vs_delta(benchmark, config, delta):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = OFFSCodec(config.offs_config(delta=delta, alpha=min(5, delta - 1)))
    codec.fit(dataset)
    paths = list(dataset)

    def compress_all():
        for path in paths:
            codec.compress_path(path)

    benchmark.pedantic(compress_all, rounds=2, iterations=1)
