"""OFFS vs Re-Pair — the grammar-compression family comparison.

Not a paper figure, but the comparison the paper's positioning implies:
OFFS is a path-specific relative of Re-Pair.  Measured head-to-head on the
alibaba surrogate:

* Re-Pair's exhaustive greedy pair replacement usually matches or beats
  OFFS on pure ratio (it recounts globally after every rule, so collisions
  cannot happen) — at a much higher construction cost;
* Re-Pair expansion is recursive (hierarchy depth reported below), OFFS is
  single-level — Algorithm 1 stays one cheap pass;
* both keep per-path random access.
"""

from repro.analysis.metrics import measure_codec
from repro.baselines.repair import RePairCodec
from repro.core.offs import OFFSCodec
from repro.workloads.registry import make_dataset


def test_offs_vs_repair(benchmark, config, report):
    dataset = make_dataset("alibaba", config.size, config.seed)
    # Same construction budget: train both on the same 1-in-2^k sample.
    k = config.sample_exponent
    base_id = dataset.max_vertex_id() + 1

    def run():
        offs = measure_codec(OFFSCodec(config.offs_config()), dataset)
        repair_codec = RePairCodec(max_rules=512, sample_exponent=k, base_id=base_id)
        repair = measure_codec(repair_codec, dataset)
        return offs, repair, repair_codec

    offs, repair, repair_codec = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("codec", "CR", "fit (s)", "DS (MB/s)", "expansion depth"),
        ("OFFS", round(offs.compression_ratio, 3), round(offs.fit_seconds, 3),
         round(offs.decompression_speed_mbps, 2), 1),
        ("RePair", round(repair.compression_ratio, 3), round(repair.fit_seconds, 3),
         round(repair.decompression_speed_mbps, 2),
         repair_codec.max_expansion_depth()),
    ]
    shape = {
        "offs_over_repair_cr": offs.compression_ratio / repair.compression_ratio,
        "repair_fit_over_offs": repair.fit_seconds / max(offs.fit_seconds, 1e-9),
        "repair_depth": float(repair_codec.max_expansion_depth()),
    }
    report(
        "repair_comparison", rows, shape,
        note="Grammar relative: Re-Pair's global recounting is collision-"
             "free but construction-heavy and expansion is hierarchical; "
             "OFFS trades a little ratio for flat one-pass expansion.",
    )
    # The comparison's qualitative content:
    assert shape["repair_fit_over_offs"] > 2.0       # OFFS builds much faster
    assert shape["repair_depth"] > 1                 # Re-Pair is hierarchical
    assert 0.5 < shape["offs_over_repair_cr"] < 2.0  # same compression league
