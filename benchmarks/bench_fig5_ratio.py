"""Figure 5a — compression ratio: OFFS vs OFFS* vs Dlz4 vs RSS vs GFS.

Paper shape on its hardware: OFFS CR ≈ 5.11 on average — more than 3× Dlz4
and ≈ 1.5× the naive DICTs; GFS averages below RSS (match collisions);
OFFS* gives up ≈ 0.33 CR.  On these scaled surrogates with a DEFLATE-backed
Dlz4 (stronger than lz4 — it entropy-codes), the margins compress but every
ordering must hold: OFFS best everywhere, naive DICTs worst, OFFS* slightly
below OFFS.
"""

from repro.bench.experiments import exp_fig5_comparison
from repro.workloads.registry import DATASET_NAMES


def test_fig5a_compression_ratio(benchmark, config, report, strict):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig5_comparison(DATASET_NAMES, config),
        rounds=1, iterations=1,
    )
    report(
        "fig5a_compression_ratio", rows, shape,
        note="OFFS > Dlz4 (paper 3x), OFFS > RSS/GFS (paper 1.5x), "
             "GFS <= RSS on road data, OFFS* slightly below OFFS.",
    )
    assert shape["offs_cr_avg"] > (2.5 if strict else 1.7)
    assert shape["offs_over_dlz4_cr"] > (1.2 if strict else 0.95)
    assert shape["offs_over_rss_cr"] > (1.3 if strict else 1.1)
    assert shape["offs_over_gfs_cr"] > (1.3 if strict else 1.1)
    # OFFS* trades a bounded amount of CR for construction speed.
    assert 0 <= shape["offs_star_cr_gap"] < 1.5
