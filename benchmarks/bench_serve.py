"""Serving-layer load benchmark — ``make bench-serve``.

Starts a real :class:`~repro.serve.PathServer` over a freshly built v2
archive, once per worker count, and drives it with a thread-pool client:
point retrievals (``/v1/retrieve``) and batch retrievals
(``/v1/retrieve_many``) with per-request latency capture.  Emits one JSON
blob (``BENCH_serve.json`` by default) reporting throughput (qps) and the
p50/p99 latency per worker count, so CI can archive the scaling trajectory
of the pre-fork fleet next to the compression timings.

A response sample is checked against direct store calls before anything
is reported — a fast wrong answer would otherwise look like a win.

Numbers here are *smoke* numbers: loopback TCP, small archives, shared CI
runners.  Read them for trajectory (does 2 workers beat 1?) and
order-of-magnitude, not for truth.

::

    PYTHONPATH=src python benchmarks/bench_serve.py --size small --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-quantile (0..1) of *samples* by nearest-rank on sorted data."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.read()


def drive(address: str, urls: List[str], threads: int) -> Dict[str, object]:
    """Fire *urls* from *threads* clients; returns qps and latency stats."""
    latencies: List[float] = []

    def one(url: str) -> float:
        started = time.perf_counter()
        _get(address + url)
        return time.perf_counter() - started

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        latencies = list(pool.map(one, urls))
    wall = time.perf_counter() - wall_started
    return {
        "requests": len(urls),
        "client_threads": threads,
        "wall_seconds": round(wall, 4),
        "qps": round(len(urls) / wall, 1) if wall else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "max_ms": round(max(latencies) * 1e3, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--workload", default="alibaba")
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts to sweep")
    parser.add_argument("--threads", type=int, default=8, help="client threads")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    from repro.core.builder import TableBuilder
    from repro.core.config import OFFSConfig
    from repro.core.mapped import MappedPathStore
    from repro.core.serialize import dump_store_file
    from repro.core.store import CompressedPathStore
    from repro.serve import PathServer, ServeConfig
    from repro.workloads.registry import make_dataset

    requests_for = {"tiny": 200, "small": 800, "medium": 3000}[args.size]
    worker_counts = [int(part) for part in args.workers.split(",") if part.strip()]

    dataset = make_dataset(args.workload, args.size, seed=0)
    table, _ = TableBuilder(OFFSConfig(iterations=3, sample_exponent=2)).build(dataset)
    store = CompressedPathStore(table)
    store.extend_flat(dataset)

    fd, store_path = tempfile.mkstemp(suffix=".rpc2")
    os.close(fd)
    results = []
    try:
        dump_store_file(store, store_path)
        n = len(store)
        # Deterministic id stream: every path hit, cycled to the target count.
        point_urls = [f"/v1/retrieve?id={i % n}" for i in range(requests_for)]
        batch = ",".join(str(i) for i in range(min(32, n)))
        batch_urls = [f"/v1/retrieve_many?ids={batch}"] * max(1, requests_for // 8)

        with MappedPathStore.open(store_path) as direct:
            expected_first = {"id": 0, "path": list(direct.retrieve(0))}

        for workers in worker_counts:
            config = ServeConfig(store_path, port=0, workers=workers)
            with PathServer(config) as server:
                # Correctness gate, then a short warmup per worker count.
                got = json.loads(_get(server.address + "/v1/retrieve?id=0"))
                if got != expected_first:
                    raise SystemExit(
                        f"served payload diverges from direct store: {got!r}"
                    )
                drive(server.address, point_urls[: args.threads * 4], args.threads)
                point = drive(server.address, point_urls, args.threads)
                batched = drive(server.address, batch_urls, args.threads)
            results.append({
                "workers": workers,
                "retrieve": point,
                "retrieve_many": {
                    "batch_size": min(32, n), **batched,
                },
            })
            print(f"workers={workers}: retrieve {point['qps']} qps "
                  f"(p50 {point['p50_ms']} ms, p99 {point['p99_ms']} ms); "
                  f"retrieve_many {batched['qps']} qps", flush=True)
    finally:
        os.unlink(store_path)

    base = results[0]["retrieve"]["qps"] if results else 0
    payload = {
        "benchmark": "serve_load",
        "workload": args.workload,
        "size": args.size,
        "python": platform.python_version(),
        "paths": len(store),
        "table_entries": len(table),
        "client_threads": args.threads,
        "worker_sweep": results,
        "scaling": {
            str(r["workers"]): round(r["retrieve"]["qps"] / base, 3)
            for r in results if base
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
