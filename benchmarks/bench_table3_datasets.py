"""Table III — dataset statistics of the four surrogates.

Regenerates the paper's dataset table (path number, node number, id number,
maximum length, average length) for the scaled synthetic stand-ins, and
benchmarks the statistics pass itself.
"""

from repro.bench.experiments import exp_table3
from repro.workloads.registry import make_dataset


def test_table3_dataset_statistics(benchmark, config, report):
    rows, shape = exp_table3(config)
    report(
        "table3_datasets", rows, shape,
        note="Alibaba avg 17.20 max 30; Rome avg 67.12; Porto max/avg "
             "ratio extreme; San Francisco smallest id universe.",
    )
    # Shape: the orderings Table III exhibits survive the scaling.
    assert shape["rome_longest_avg"] == 1.0
    assert 12 <= shape["alibaba_avg"] <= 24
    assert shape["sanfrancisco_fewest_ids"] == 1.0

    dataset = make_dataset("alibaba", config.size, config.seed)
    benchmark(dataset.stats)
