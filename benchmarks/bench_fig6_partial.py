"""Figure 6b — partial decompression speed vs retrieved fraction.

Paper shape: per-path granularity keeps PDS in the same league as full DS
all the way down to 1% retrieval (≈ 500 MB/s at 1% vs ≈ 1000 MB/s full on
their hardware; the *ratio* is what the benchmark checks).  One
pytest-benchmark row per fraction.
"""

import pytest

from repro.bench.experiments import exp_fig6_partial
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.workloads.registry import make_dataset

FRACTIONS = (0.01, 0.05, 0.10, 0.25, 0.50, 1.0)


def test_fig6b_partial_decompression_table(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig6_partial("alibaba", FRACTIONS, config),
        rounds=1, iterations=1,
    )
    report(
        "fig6b_partial_decompression", rows, shape,
        note="PDS at 1% stays within ~2x of full-archive DS (paper: 0.75x).",
        chart=(0, {"PDS": 1}),
    )
    assert shape["pds_min"] > 0
    assert shape["pds_at_1pct_over_full"] > 0.3


@pytest.fixture(scope="module")
def store(config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = OFFSCodec(config.offs_config()).fit(dataset)
    return CompressedPathStore.from_dataset(dataset, codec.table)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig6b_retrieval_speed(benchmark, store, fraction):
    benchmark.pedantic(
        lambda: store.retrieve_fraction(fraction, seed=1),
        rounds=3, iterations=1,
    )
