"""Figure 6b — partial decompression speed vs retrieved fraction.

Paper shape: per-path granularity keeps PDS in the same league as full DS
all the way down to 1% retrieval (≈ 500 MB/s at 1% vs ≈ 1000 MB/s full on
their hardware; the *ratio* is what the benchmark checks).  One
pytest-benchmark row per fraction.

Methodology: every row is timed as the *minimum over N rounds* (min-of-N
is the standard noise filter for wall-clock microbenchmarks — the minimum
is the run least perturbed by scheduler and allocator noise;
pytest-benchmark's ``min`` column is the number to read).  The slice rows
take partiality below the per-path granularity the paper stops at:
``retrieve_slice`` serves a window of one path by arithmetic over the
memoized expansion lengths, so its cost tracks the window, not the path.
"""

import pytest

from repro.bench.experiments import exp_fig6_partial
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.workloads.registry import make_dataset

FRACTIONS = (0.01, 0.05, 0.10, 0.25, 0.50, 1.0)
ROUNDS = 3  # report min-of-3


def test_fig6b_partial_decompression_table(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig6_partial("alibaba", FRACTIONS, config),
        rounds=ROUNDS, iterations=1,
    )
    report(
        "fig6b_partial_decompression", rows, shape,
        note="PDS at 1% stays within ~2x of full-archive DS (paper: 0.75x).",
        chart=(0, {"PDS": 1}),
    )
    assert shape["pds_min"] > 0
    assert shape["pds_at_1pct_over_full"] > 0.3


@pytest.fixture(scope="module")
def store(config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = OFFSCodec(config.offs_config()).fit(dataset)
    return CompressedPathStore.from_dataset(dataset, codec.table)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig6b_retrieval_speed(benchmark, store, fraction):
    benchmark.pedantic(
        lambda: store.retrieve_fraction(fraction, seed=1),
        rounds=ROUNDS, iterations=1,
    )


@pytest.mark.parametrize("window", (1, 4))
def test_fig6b_slice_retrieval_speed(benchmark, store, window):
    """Sub-path partial decompression: a fixed window out of every path."""
    store.table.expansions()  # steady-state: cache warmed outside the timer
    n = len(store)

    def slice_all():
        for pid in range(n):
            store.retrieve_slice(pid, 0, window)

    benchmark.extra_info["window"] = window
    benchmark.pedantic(slice_all, rounds=ROUNDS, iterations=1)


def test_fig6b_slice_equals_full_retrieve_slicing(store):
    """The slice route must be exact — spot-check against full retrieval."""
    for pid in range(0, len(store), max(1, len(store) // 50)):
        full = store.retrieve(pid)
        assert store.retrieve_slice(pid, 0, 4) == full[0:4]
        assert store.retrieve_slice(pid, -2, None) == full[-2:]
