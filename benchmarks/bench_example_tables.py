"""Tables I and II / Figure 3 — the worked match-collision example, live.

The paper's Figure 3 walks a 5-path set through GFS (Table I, left: a table
full of overlapping fragments) and OFFS (Table I, right: complementary
entries; Table II: the candidate evolution).  This bench replays the same
phenomenon on the collision workload and prints both resulting tables.
"""

from repro.analysis.metrics import measure_codec
from repro.baselines.gfs import GFSCodec
from repro.core.offs import OFFSCodec
from repro.workloads.registry import make_dataset

CAPACITY = 24


def test_tables_1_and_2_match_collision_example(benchmark, config, report):
    dataset = make_dataset("collision", config.size, config.seed)

    def run():
        offs = OFFSCodec(config.offs_config(sample_exponent=0, capacity=CAPACITY))
        offs_m = measure_codec(offs, dataset)
        gfs = GFSCodec(capacity=CAPACITY, sample_exponent=0)
        gfs_m = measure_codec(gfs, dataset)
        return offs, offs_m, gfs, gfs_m

    offs, offs_m, gfs, gfs_m = benchmark.pedantic(run, rounds=1, iterations=1)

    hot = tuple(range(1000, 1008))

    def fragment_count(table) -> int:
        return sum(
            1 for sp in table.subpaths
            if any(hot[i : i + len(sp)] == sp for i in range(len(hot)))
        )

    rows = [
        ("table", "entries", "hot fragments", "CR"),
        ("OFFS (practical freq)", len(offs.table), fragment_count(offs.table),
         round(offs_m.compression_ratio, 3)),
        ("GFS (gross freq)", len(gfs.table), fragment_count(gfs.table),
         round(gfs_m.compression_ratio, 3)),
    ]
    shape = {
        "offs_over_gfs_cr": offs_m.compression_ratio / gfs_m.compression_ratio,
        "gfs_fragments": float(fragment_count(gfs.table)),
        "offs_fragments": float(fragment_count(offs.table)),
    }
    report(
        "tables1_2_match_collision", rows, shape,
        note="Table I: GFS capacity drowns in overlapping fragments of the "
             "hot subpath; OFFS keeps one winner + complementary entries.",
    )
    assert shape["gfs_fragments"] > shape["offs_fragments"]
    assert shape["offs_over_gfs_cr"] > 1.5
