"""Component-ablation benchmark — ``make bench-ablation``.

Runs the :mod:`repro.bench.ablation` matrix (baseline + one cell per knob
value, per workload), round-trip-verifying every cell, and emits one JSON
report (``BENCH_ablation.json``) with stable run ids and the ranked
per-component importance table that ``repro.core.autotune`` consumes.

The run is resumable: pass ``--partial FILE`` (kept by default next to the
output) and an interrupted campaign continues where it stopped — completed
run ids are skipped, not re-measured.

::

    PYTHONPATH=src python benchmarks/bench_ablation.py --size small --out BENCH_ablation.json
    PYTHONPATH=src python benchmarks/bench_ablation.py --size tiny --rounds 1 --processes 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.analysis.stats import format_table
    from repro.bench.ablation import DEFAULT_WORKLOADS, run_ablation

    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--size", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--workloads", nargs="+", default=list(DEFAULT_WORKLOADS),
                        help="workload names (default: %(default)s)")
    parser.add_argument("--mode", default="single", choices=("single", "pairwise"),
                        help="off-by-one matrix or the pairwise interaction grid")
    parser.add_argument("--rounds", type=int, default=2,
                        help="min-of-N rounds per timed region")
    parser.add_argument("--processes", type=int, default=1,
                        help="fan the matrix out over N worker processes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_ablation.json")
    parser.add_argument("--partial", default=None, metavar="FILE",
                        help="resumable partial-results file "
                             "(default: <out>.partial)")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore and overwrite any existing partial file")
    args = parser.parse_args(argv)

    partial = args.partial or args.out + ".partial"
    if args.fresh and os.path.exists(partial):
        os.remove(partial)

    report = run_ablation(
        workloads=args.workloads,
        size=args.size,
        seed=args.seed,
        rounds=args.rounds,
        processes=args.processes,
        mode=args.mode,
        partial_path=partial,
        echo=lambda line: print(line, flush=True),
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    if os.path.exists(partial):
        os.remove(partial)  # campaign finished; the report is the artifact

    rows = [("workload", "rank", "component", "knob", "importance", "best", "CR")]
    for entry in report["importance"]:
        rows.append((
            entry["workload"], entry["rank"], entry["component"], entry["knob"],
            entry["importance"], str(entry["best_value"]), entry["best_cr"],
        ))
    print(format_table(rows, title=f"component importance ({args.size} tier)"))
    print(f"wrote {args.out} ({len(report['runs'])} cells)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
