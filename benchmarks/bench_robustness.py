"""Robustness sweep — OFFS across workload families, including the floors.

Not a paper figure; the honesty check a release needs.  OFFS is measured on
every bundled workload family: the four Table III surrogates, the
scale-free web sessions (harder: short paths, one-off sessions), and
uniform noise (the floor: CR must degrade toward 1 gracefully, never
corrupt).  The redundancy report's verdict is printed next to each measured
ratio so the predictor can be eyeballed against reality.
"""

from repro.analysis.distribution import redundancy_report
from repro.analysis.metrics import measure_codec
from repro.core.offs import OFFSCodec
from repro.workloads.registry import DATASET_NAMES, make_dataset

FAMILIES = DATASET_NAMES + ("web", "noise")


def test_offs_across_workload_families(benchmark, config, report):
    def run():
        results = []
        for name in FAMILIES:
            dataset = make_dataset(name, config.size, config.seed)
            verdict = redundancy_report(dataset).verdict
            m = measure_codec(OFFSCodec(config.offs_config()), dataset)
            results.append((name, verdict, m.compression_ratio))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("workload", "redundancy verdict", "CR")]
    for name, verdict, cr in results:
        rows.append((name, verdict, round(cr, 3)))
    by_name = {name: cr for name, _, cr in results}
    shape = {
        "surrogate_min_cr": min(by_name[n] for n in DATASET_NAMES),
        "web_cr": by_name["web"],
        "noise_cr": by_name["noise"],
    }
    report(
        "robustness_families", rows, shape,
        note="Graceful degradation: strong on the Table III surrogates, "
             "positive on hub traffic, ~1 (never broken) on noise.",
    )
    assert shape["surrogate_min_cr"] > 2.0
    assert shape["web_cr"] > 1.1
    # The floor: on incompressible data the ratio approaches 1 from below
    # (framing overhead) but the round-trip stayed lossless (measure_codec
    # verifies every path).
    assert 0.8 < shape["noise_cr"] <= 1.1
