"""Section V — per-path parallelism of compression and decompression.

The paper claims ``O(|P|·δ²/p)`` compression and ``O(|P|/p)`` decompression
on p cores thanks to per-path purity.  One pytest-benchmark row per
(process count, backend) pair; pure-Python IPC overhead means the speedup is
visible but sublinear (the vectorized ``rolling`` kernel narrows the gap by
shrinking per-chunk Python work).

Methodology: every row is timed as the *minimum over N rounds* (min-of-N is
the standard noise filter for wall-clock microbenchmarks — the minimum is
the run least perturbed by scheduler and allocator noise; pytest-benchmark's
``min`` column is the number to read).  Alongside the timing, each row runs
once under :mod:`repro.obs` instrumentation and attaches the per-backend
probe counters (``matcher.probes`` / ``matcher.hashed_vertices``) to
``benchmark.extra_info``, so probe-cost differences between backends are on
record next to the wall-clock they explain.
"""

import pytest

from repro.core.offs import OFFSCodec
from repro.core.parallel import parallel_compress, parallel_decompress
from repro.obs import instrumented
from repro.workloads.registry import make_dataset

PROCESS_COUNTS = (1, 2, 4)
BACKENDS = ("hash", "rolling")
ROUNDS = 3  # report min-of-3


@pytest.fixture(scope="module")
def setup(config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = OFFSCodec(config.offs_config()).fit(dataset)
    tokens = codec.compress_dataset(dataset)
    return list(dataset), codec.table, tokens


def _probe_counters(run):
    """One instrumented execution of *run*; returns the probe counters."""
    with instrumented() as obs:
        run()
    counters = obs.registry.counters()
    return {
        "matcher.probes": counters.get("matcher.probes", 0),
        "matcher.hashed_vertices": counters.get("matcher.hashed_vertices", 0),
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("processes", PROCESS_COUNTS)
def test_parallel_compress_scaling(benchmark, setup, processes, backend):
    paths, table, _ = setup
    run = lambda: parallel_compress(paths, table, processes=processes,
                                    backend=backend)
    benchmark.extra_info.update(_probe_counters(run))
    benchmark.extra_info["backend"] = backend
    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.parametrize("processes", PROCESS_COUNTS)
def test_parallel_decompress_scaling(benchmark, setup, processes):
    _, table, tokens = setup
    benchmark.pedantic(
        lambda: parallel_decompress(tokens, table, processes=processes),
        rounds=ROUNDS, iterations=1,
    )
