"""Section V — per-path parallelism of compression and decompression.

The paper claims ``O(|P|·δ²/p)`` compression and ``O(|P|/p)`` decompression
on p cores thanks to per-path purity.  One pytest-benchmark row per process
count; pure-Python IPC overhead means the speedup is visible but sublinear
(per-path C kernels would track the bound much closer).
"""

import pytest

from repro.core.offs import OFFSCodec
from repro.core.parallel import parallel_compress, parallel_decompress
from repro.workloads.registry import make_dataset

PROCESS_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def setup(config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = OFFSCodec(config.offs_config()).fit(dataset)
    tokens = codec.compress_dataset(dataset)
    return list(dataset), codec.table, tokens


@pytest.mark.parametrize("processes", PROCESS_COUNTS)
def test_parallel_compress_scaling(benchmark, setup, processes):
    paths, table, _ = setup
    benchmark.pedantic(
        lambda: parallel_compress(paths, table, processes=processes),
        rounds=2, iterations=1,
    )


@pytest.mark.parametrize("processes", PROCESS_COUNTS)
def test_parallel_decompress_scaling(benchmark, setup, processes):
    _, table, tokens = setup
    benchmark.pedantic(
        lambda: parallel_decompress(tokens, table, processes=processes),
        rounds=2, iterations=1,
    )
