"""Sharded-store benchmark — ``make bench-shard``.

Three claims of the sharded subsystem, measured end to end and emitted as
one JSON blob (``BENCH_shard.json`` by default):

* **parallel build** — wall-clock of :func:`repro.core.sharded.
  build_sharded_store` (4 shards × 4 worker processes, per-shard
  compression *and* serialization in the workers) against the sequential
  monolithic v2 build of the same corpus with the same pre-built table,
  min-of-``ROUNDS`` each, for both matcher backends.  The sharded output
  is checked token-identical to the monolithic archive *before* any timing
  is reported — a fast wrong build would otherwise look like a win.
  Because CI runners may expose fewer cores than workers, the report
  carries the runner's ``cpus`` and, alongside the measured wall numbers,
  a clearly-labelled critical-path projection (measured fixed overhead +
  the slowest single shard's in-process time) — the wall-clock a
  ``processes``-core machine would see, in the "(projected)" style of the
  in-memory-vs-streaming comparison this bench follows.
* **constant-memory streaming ingest** — :class:`repro.core.sharded.
  ShardedIngest` fed 1×, 2× and 4× the largest size tier, each run in its
  own subprocess so ``getrusage`` peak RSS is clean, with source paths
  generated chunk-by-chunk (never materializing the stream).  The flatness
  ratio ``peak(4×) / peak(1×)`` is the headline: the LSM-style memtable
  holds it near 1.0.  Each child verifies a deterministic sample of
  ingested paths round-trips from the sealed shards before reporting.
* **monolithic-vs-sharded crossover** — the same stream lengths ingested
  the monolithic way (accumulate every path in memory, compress once,
  write one blob) for the crossover table: monolithic is faster at small
  scale but its peak RSS grows with the dataset, while sharded ingest
  stays flat — the point where the curves cross is where sharding starts
  paying for itself.

Numbers here are *smoke* numbers: shared CI runners, modest sizes.  Read
them for trajectory (is peak memory flat? where do the curves cross?),
not for truth.

::

    PYTHONPATH=src python benchmarks/bench_shard.py --size medium --out BENCH_shard.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

ROUNDS = 3  # report min-of-3
INGEST_CHUNK = 5000
MEMTABLE_PATHS = 4096
TRAIN_AFTER = 1000
BASE_ID = 1 << 30


def _cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _generate_chunks(total: int):
    """Yield the ingest stream as (chunk_index, paths) without ever holding
    more than one chunk: the point of the memory benchmark is that *ingest*
    memory stays flat, so the source must not grow with ``total`` either."""
    from repro.workloads.synthetic import alibaba_cloud_workload

    produced = 0
    index = 0
    while produced < total:
        count = min(INGEST_CHUNK, total - produced)
        yield index, list(alibaba_cloud_workload(count, seed=index))
        produced += count
        index += 1


def _report_child(payload: dict) -> int:
    import resource

    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    payload["peak_rss_mb"] = round(peak_kb / 1024.0, 2)
    print(json.dumps(payload))
    return 0


def _ingest_child(total: int) -> int:
    """Subprocess body: stream *total* paths through ShardedIngest, verify,
    print one JSON line."""
    from repro.core.sharded import ShardedIngest, ShardedPathStore

    out = os.path.join(tempfile.mkdtemp(prefix="bench_shard_"), "stream.rpsm")
    started = time.perf_counter()
    with ShardedIngest(
        out,
        train_after=TRAIN_AFTER,
        memtable_paths=MEMTABLE_PATHS,
        window=500,
        base_id=BASE_ID,
    ) as ingest:
        for _, chunk in _generate_chunks(total):
            ingest.feed_many(chunk)
    elapsed = time.perf_counter() - started

    # Correctness gate: sealed shards must hold exactly the fed stream.
    # Chunks are deterministic, so re-generate and sample-check before
    # reporting any number.
    store = ShardedPathStore.open(out)
    if len(store) != total:
        raise SystemExit(f"ingest lost paths: fed {total}, stored {len(store)}")
    offset = 0
    for _, chunk in _generate_chunks(total):
        for position in range(0, len(chunk), max(1, len(chunk) // 8)):
            got = store.retrieve(offset + position)
            if got != tuple(chunk[position]):
                raise SystemExit(
                    f"ingested path {offset + position} diverges: "
                    f"{got!r} != {tuple(chunk[position])!r}"
                )
        offset += len(chunk)
    shard_count = store.shard_count
    mapped = store.mapped_bytes
    store.close()
    return _report_child({
        "mode": "sharded",
        "paths": total,
        "seconds": round(elapsed, 4),
        "paths_per_second": round(total / elapsed, 1) if elapsed else 0.0,
        "shards": shard_count,
        "mapped_bytes": mapped,
        "memtable_paths": MEMTABLE_PATHS,
    })


def _mono_child(total: int) -> int:
    """Subprocess body: the monolithic in-memory counterpart — accumulate
    the whole stream, train on the same warm-up budget, compress once,
    write one v2 blob.  The crossover baseline."""
    from repro.core.builder import build_supernode_table
    from repro.core.compressor import compress_paths_flat
    from repro.core.mapped import MappedPathStore
    from repro.core.matcher import static_matcher_from_table
    from repro.core.serialize import dumps_store_v2_tokens

    out = os.path.join(tempfile.mkdtemp(prefix="bench_shard_"), "mono.rpc2")
    started = time.perf_counter()
    paths = []
    for _, chunk in _generate_chunks(total):
        paths.extend(chunk)
    table = build_supernode_table(paths[:TRAIN_AFTER], base_id=BASE_ID)
    matcher = static_matcher_from_table(table, "rolling")
    tokens = compress_paths_flat(paths, table, matcher)
    with open(out, "wb") as fh:
        fh.write(dumps_store_v2_tokens(table, tokens))
    elapsed = time.perf_counter() - started

    with MappedPathStore.open(out) as store:
        if len(store) != total:
            raise SystemExit(f"monolithic build lost paths: {len(store)} != {total}")
        for gid in range(0, total, max(1, total // 64)):
            if store.retrieve(gid) != tuple(paths[gid]):
                raise SystemExit(f"monolithic path {gid} diverges")
    return _report_child({
        "mode": "monolithic",
        "paths": total,
        "seconds": round(elapsed, 4),
        "paths_per_second": round(total / elapsed, 1) if elapsed else 0.0,
    })


def _run_child(mode_flag: str, total: int) -> dict:
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), mode_flag, str(total)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        check=False,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"child {mode_flag} {total} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _bench_build_backend(corpus, table, backend: str, shards: int, processes: int,
                         workdir: str) -> dict:
    """Monolithic vs sharded wall time for one matcher backend, plus the
    critical-path decomposition that projects multi-core wall-clock."""
    from repro.core.compressor import compress_paths_flat
    from repro.core.flatcorpus import FlatCorpus
    from repro.core.mapped import MappedPathStore
    from repro.core.matcher import static_matcher_from_table
    from repro.core.serialize import dumps_store_v2_tokens
    from repro.core.sharded import ShardedPathStore, build_sharded_store, partition_corpus

    mono_path = os.path.join(workdir, f"mono-{backend}.rpc2")
    sharded_path = os.path.join(workdir, f"sharded-{backend}.rpsm")

    def build_monolithic() -> None:
        matcher = static_matcher_from_table(table, backend)
        tokens = compress_paths_flat(corpus, table, matcher)
        blob = dumps_store_v2_tokens(table, tokens)
        with open(mono_path, "wb") as fh:
            fh.write(blob)

    def build_sharded() -> None:
        build_sharded_store(
            corpus, table, sharded_path,
            shards=shards, processes=processes, backend=backend,
        )

    # Correctness gate before any timing: the sharded archive must answer
    # token-identically to the monolithic one.
    build_monolithic()
    build_sharded()
    with MappedPathStore.open(mono_path) as mono:
        sharded_store = ShardedPathStore.open(sharded_path)
        if sharded_store.tokens() != mono.tokens():
            raise SystemExit(f"sharded {backend} build diverges from monolithic tokens")
        sample = list(range(0, len(mono), max(1, len(mono) // 64)))
        if sharded_store.retrieve_many(sample) != mono.retrieve_many(sample):
            raise SystemExit(f"sharded {backend} retrieval diverges from monolithic")
        sharded_store.close()

    mono_seconds = min(_timed(build_monolithic) for _ in range(ROUNDS))
    sharded_seconds = min(_timed(build_sharded) for _ in range(ROUNDS))

    # Critical-path decomposition: fixed overhead is the sharded build of a
    # corpus with ~no compression work (spawn + partition + manifest), the
    # parallel part is the slowest single shard compressed+serialized
    # in-process.  Their sum is the wall a `processes`-core runner would
    # see; on runners with fewer cores than workers the measured wall above
    # is contention-bound, so both are reported, clearly labelled.
    tiny = FlatCorpus.from_paths(list(corpus)[: shards])
    overhead_path = os.path.join(workdir, f"overhead-{backend}.rpsm")
    overhead_seconds = min(
        _timed(lambda: build_sharded_store(
            tiny, table, overhead_path,
            shards=shards, processes=processes, backend=backend,
        ))
        for _ in range(ROUNDS)
    )
    matcher = static_matcher_from_table(table, backend)
    per_shard = []
    for part in partition_corpus(corpus, shards, "range"):
        per_shard.append(min(
            _timed(lambda: dumps_store_v2_tokens(
                table, compress_paths_flat(part, table, matcher)))
            for _ in range(ROUNDS)
        ))
    projected = overhead_seconds + max(per_shard)
    return {
        "backend": backend,
        "monolithic_seconds": round(mono_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "wall_speedup": round(mono_seconds / sharded_seconds, 3) if sharded_seconds else 0.0,
        "fixed_overhead_seconds": round(overhead_seconds, 4),
        "per_shard_seconds": [round(s, 4) for s in per_shard],
        "projected_parallel_seconds": round(projected, 4),
        "projected_speedup": round(mono_seconds / projected, 3) if projected else 0.0,
    }


def bench_build(size: str, shards: int, processes: int) -> dict:
    """Min-of-ROUNDS monolithic vs sharded build on one corpus + table."""
    from repro.core.builder import TableBuilder
    from repro.core.config import OFFSConfig
    from repro.workloads.registry import make_dataset

    dataset = make_dataset("alibaba", size, seed=0)
    corpus = dataset.to_flat()
    table, _ = TableBuilder(OFFSConfig(iterations=3, sample_exponent=2)).build(dataset)
    workdir = tempfile.mkdtemp(prefix="bench_shard_build_")
    cpus = _cpus()
    return {
        "workload": "alibaba",
        "size": size,
        "paths": len(corpus),
        "table_entries": len(table),
        "shards": shards,
        "processes": processes,
        "rounds": ROUNDS,
        "cpus": cpus,
        "cpu_limited": cpus < processes,
        "backends": {
            backend: _bench_build_backend(corpus, table, backend, shards, processes, workdir)
            for backend in ("rolling", "hash")
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="medium", choices=("tiny", "small", "medium"))
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--ingest-multipliers", default="1,2,4",
                        help="stream lengths as multiples of the size tier")
    parser.add_argument("--out", default="BENCH_shard.json")
    parser.add_argument("--ingest-child", type=int, default=None,
                        help=argparse.SUPPRESS)  # internal: subprocess mode
    parser.add_argument("--mono-child", type=int, default=None,
                        help=argparse.SUPPRESS)  # internal: subprocess mode
    args = parser.parse_args(argv)

    if args.ingest_child is not None:
        return _ingest_child(args.ingest_child)
    if args.mono_child is not None:
        return _mono_child(args.mono_child)

    from repro.workloads.registry import SIZE_PRESETS

    build = bench_build(args.size, args.shards, args.processes)
    for backend, result in build["backends"].items():
        print(f"build[{args.size}/{backend}]: monolithic {result['monolithic_seconds']}s, "
              f"sharded({args.shards}x{args.processes}) {result['sharded_seconds']}s "
              f"(wall {result['wall_speedup']}x on {build['cpus']} cpu(s); "
              f"projected {result['projected_speedup']}x at {args.processes} cores)",
              flush=True)

    tier = SIZE_PRESETS[args.size]["alibaba"]
    multipliers = [int(part) for part in args.ingest_multipliers.split(",") if part.strip()]
    runs = []
    for multiplier in multipliers:
        for flag, mode in (("--ingest-child", "sharded"), ("--mono-child", "monolithic")):
            run = _run_child(flag, tier * multiplier)
            run["multiplier"] = multiplier
            runs.append(run)
            print(f"{mode}[{multiplier}x = {run['paths']} paths]: "
                  f"{run['seconds']}s, peak {run['peak_rss_mb']} MB", flush=True)

    sharded_runs = [run for run in runs if run["mode"] == "sharded"]
    base_peak = sharded_runs[0]["peak_rss_mb"] if sharded_runs else 0
    payload = {
        "benchmark": "sharded_store",
        "python": platform.python_version(),
        "build": build,
        "ingest": {
            "tier_paths": tier,
            "chunk_paths": INGEST_CHUNK,
            "train_after": TRAIN_AFTER,
            "runs": runs,
            "peak_rss_flatness": {
                f"{run['multiplier']}x": round(run["peak_rss_mb"] / base_peak, 3)
                for run in sharded_runs if base_peak
            },
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
