"""Section II-B — the lightweight-compression survey, measured on paths.

The paper places OFFS in the five-family taxonomy (FOR, DELTA, DICT, RLE,
NS) and argues only the DICT family fits path data.  This bench encodes the
alibaba surrogate under each family and shows why: per-path vertex ids are
neither clustered, smooth nor repetitive, so FOR/DELTA/RLE/NS hover near
the varint floor while OFFS (the DICT representative) pulls ahead by
exploiting cross-path subpath redundancy.
"""

from repro.analysis.sizing import dataset_raw_bytes
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.paths.encoding import VarintEncoding
from repro.paths.lightweight import LIGHTWEIGHT_CODECS
from repro.workloads.registry import make_dataset


def test_lightweight_families_on_paths(benchmark, config, report):
    dataset = make_dataset("alibaba", config.size, config.seed)
    raw = dataset_raw_bytes(dataset)

    def run():
        sizes = {}
        for codec in LIGHTWEIGHT_CODECS:
            sizes[codec.name] = sum(len(codec.encode(p)) for p in dataset)
        offs = OFFSCodec(config.offs_config())
        store = CompressedPathStore.from_codec(dataset, offs)
        sizes["DICT (OFFS)"] = store.compressed_size_bytes(VarintEncoding())
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("family", "bytes", "CR vs raw32")]
    for name, size in sorted(sizes.items(), key=lambda e: e[1]):
        rows.append((name, size, round(raw / size, 3)))
    shape = {
        "dict_over_best_other": min(
            size for name, size in sizes.items() if name != "DICT (OFFS)"
        ) / sizes["DICT (OFFS)"],
    }
    report(
        "lightweight_survey", rows, shape,
        note="Only the DICT family exploits cross-path subpath redundancy; "
             "FOR/DELTA/RLE/NS stay near the varint floor on vertex ids.",
    )
    assert shape["dict_over_best_other"] > 1.2
