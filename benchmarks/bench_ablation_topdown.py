"""Ablation A4 — the §IV-D hybrid top-down refinement.

On the standard surrogates the bottom-up pipeline suffices (paths repeat);
on a unique-affix workload — every path has a one-off prefix/suffix around
a hot interior — pure bottom-up overshoots into weight-1 full-path
candidates and finalizes a near-empty table.  The hybrid's cut-and-recount
passes recover the frequent cores.
"""

from repro.analysis.metrics import measure_codec
from repro.core.offs import OFFSCodec
from repro.paths.dataset import PathDataset


def unique_affix_workload(path_count: int, seed: int) -> PathDataset:
    import random

    rng = random.Random(seed)
    hots = [tuple(range(1000 + 10 * h, 1008 + 10 * h)) for h in range(6)]
    paths = []
    for i in range(path_count):
        hot = hots[rng.randrange(len(hots))]
        paths.append((5000 + i,) + hot + (9000 + i,))
    return PathDataset(paths, name="unique-affix")


def test_a4_topdown_rescues_unique_affixes(benchmark, config, report):
    dataset = unique_affix_workload(2000, config.seed)
    # A generous λ models the regime the hybrid exists for: when the top-λ
    # filter never binds (ample capacity budget), one-off full-path merge
    # candidates survive iterations and shadow their frequent interiors —
    # only the top-down cuts can recover them.
    capacity = 50_000

    def run():
        plain = measure_codec(
            OFFSCodec(config.offs_config(sample_exponent=0, capacity=capacity)),
            dataset,
        )
        hybrid = measure_codec(
            OFFSCodec(
                config.offs_config(
                    sample_exponent=0, capacity=capacity, topdown_rounds=3
                )
            ),
            dataset,
        )
        return plain, hybrid

    plain, hybrid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("variant", "CR", "fit (s)"),
        ("bottom-up only", round(plain.compression_ratio, 3), round(plain.fit_seconds, 3)),
        ("hybrid + top-down", round(hybrid.compression_ratio, 3), round(hybrid.fit_seconds, 3)),
    ]
    shape = {
        "hybrid_over_plain_cr": hybrid.compression_ratio / plain.compression_ratio,
    }
    report(
        "ablation_a4_topdown", rows, shape,
        note="Unique affixes around hot interiors defeat pure bottom-up; "
             "the hybrid's cuts recover the cores (paper IV-D, opt. (1)).",
    )
    assert shape["hybrid_over_plain_cr"] > 1.5
