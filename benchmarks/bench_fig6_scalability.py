"""Figure 6c — CR when the table is built from a fraction of the data.

Paper shape: the table built from first-arriving samples stays
representative — CR loses less than 15% at a 20% construction sample, and
OFFS keeps a wide CR lead over the generic-compression reference.
"""

from repro.bench.experiments import exp_fig6_scalability
from repro.core.offs import OFFSCodec
from repro.workloads.registry import make_dataset

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig6c_scalability_table(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig6_scalability("alibaba", FRACTIONS, config),
        rounds=1, iterations=1,
    )
    report(
        "fig6c_scalability", rows, shape,
        note="Paper: CR 4.4 -> 5.1 over 20% -> 100% (relative loss < 15%).",
        chart=(0, {"CR": 1}),
    )
    assert shape["relative_loss_at_20pct"] < 0.15
    assert shape["cr_20pct_over_dlz4"] > 0.9


def test_fig6c_fit_on_fifth_benchmark(benchmark, config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    sample = dataset.sample_fraction(0.2, seed=config.seed)
    base_id = dataset.max_vertex_id() + 1

    def fit():
        OFFSCodec(config.offs_config(), base_id=base_id).fit(sample)

    benchmark.pedantic(fit, rounds=3, iterations=1)
