"""Tiny smoke benchmark — ``make bench-smoke``.

A fig5-style speed run small enough for CI: build one table on one
workload, then time the seed pipeline (per-path loop, flat hash matcher)
against the flat batch pipeline with the rolling backend, min-of-N each,
asserting byte-identical output.  Emits one JSON blob (``BENCH_smoke.json``
by default) so CI can archive a timing trajectory next to the test logs.

The same run benchmarks the decode path into a second blob
(``BENCH_decode.json``): cold vs warm expansion cache, the per-path
decompress loop vs the flat batch kernel, and in-memory retrieval vs a
``MappedPathStore`` over a temp v2 file — all on the same archive, with an
identical-output assertion across every route.

Timings here are *smoke* numbers: small inputs, shared runners — read them
for trajectory and order-of-magnitude, not for truth.  The real harness is
``pytest benchmarks/ --benchmark-only`` and ``python -m repro.bench``.

::

    PYTHONPATH=src python benchmarks/smoke.py --size tiny --out BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Callable, Dict


def min_of(run: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_decode(table, tokens, paths, rounds: int) -> Dict[str, object]:
    """Time the decode routes on one archive; returns the JSON payload.

    Every route is checked for identical output before anything is timed —
    a fast wrong answer would otherwise look like a win.
    """
    from repro.core.compressor import decompress_path, decompress_paths_flat
    from repro.core.flatcorpus import FlatCorpus
    from repro.core.mapped import MappedPathStore
    from repro.core.serialize import dump_store_file
    from repro.core.store import CompressedPathStore

    store = CompressedPathStore(table)
    store._tokens.extend(tokens)
    token_corpus = FlatCorpus.from_paths(tokens)
    total_symbols = sum(len(p) for p in paths)

    def seed_loop():
        return [decompress_path(t, table) for t in tokens]

    # Identity first: per-path loop == flat kernel == original paths.
    loop_out = seed_loop()
    flat_out = decompress_paths_flat(token_corpus, table, as_corpus=True)
    identical = loop_out == list(paths) and flat_out.to_paths() == loop_out

    # Cold = cache built inside the timed region (first decode after load);
    # warm = the steady state every later decode enjoys.
    def cold_first_decode():
        table._expansion_cache = None
        return seed_loop()

    cold_s = min_of(cold_first_decode, rounds)
    table.expansions()
    warm_s = min_of(seed_loop, rounds)
    flat_s = min_of(
        lambda: decompress_paths_flat(token_corpus, table, as_corpus=True), rounds
    )
    flat_paths_s = min_of(lambda: decompress_paths_flat(token_corpus, table), rounds)

    # Point retrievals: every path once, in-memory store vs mapped v2 file.
    sample = range(len(store))
    fd, v2_path = tempfile.mkstemp(suffix=".rpc2")
    os.close(fd)
    try:
        dump_store_file(store, v2_path)
        open_s = min_of(lambda: MappedPathStore.open(v2_path).close(), rounds)
        with MappedPathStore.open(v2_path) as mapped:
            identical = identical and [mapped.retrieve(i) for i in sample] == loop_out
            memory_s = min_of(lambda: [store.retrieve(i) for i in sample], rounds)
            mapped_s = min_of(lambda: [mapped.retrieve(i) for i in sample], rounds)
    finally:
        os.unlink(v2_path)

    def msym(seconds: float) -> float:
        return round(total_symbols / seconds / 1e6, 3) if seconds else 0.0

    return {
        "benchmark": "smoke_decode",
        "rounds": rounds,
        "paths": len(tokens),
        "symbols": total_symbols,
        "identical_output": identical,
        "expansion_cache": {
            "cold_first_decode_seconds": round(cold_s, 4),
            "warm_decode_seconds": round(warm_s, 4),
            "cold_over_warm": round(cold_s / warm_s, 3) if warm_s else None,
        },
        "pipelines": {
            "seed_perpath_loop": {"seconds": round(warm_s, 4), "msym_per_s": msym(warm_s)},
            "flat_batch_corpus": {"seconds": round(flat_s, 4), "msym_per_s": msym(flat_s)},
            "flat_batch_to_paths": {
                "seconds": round(flat_paths_s, 4),
                "msym_per_s": msym(flat_paths_s),
            },
        },
        "stores": {
            "mapped_open_seconds": round(open_s, 6),
            "memory_retrieve_all_ids_seconds": round(memory_s, 4),
            "mapped_retrieve_all_ids_seconds": round(mapped_s, 4),
            "mapped_over_memory": round(mapped_s / memory_s, 3) if memory_s else None,
        },
        "speedup": round(warm_s / flat_s, 3) if flat_s else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="tiny", choices=("tiny", "small", "medium"))
    parser.add_argument("--workload", default="alibaba")
    parser.add_argument("--rounds", type=int, default=3, help="report min-of-N")
    parser.add_argument("--out", default="BENCH_smoke.json")
    parser.add_argument("--decode-out", default="BENCH_decode.json")
    args = parser.parse_args(argv)

    from repro.core.builder import TableBuilder
    from repro.core.compressor import compress_dataset, compress_paths_flat
    from repro.core.config import OFFSConfig
    from repro.core.matcher import static_matcher_from_table
    from repro.obs import instrumented
    from repro.workloads.registry import make_dataset

    dataset = make_dataset(args.workload, args.size, seed=0)
    sample_exponent = {"tiny": 0, "small": 2, "medium": 4}[args.size]
    config = OFFSConfig(iterations=4, sample_exponent=sample_exponent)
    table, report = TableBuilder(config).build(dataset)

    paths = list(dataset)
    corpus = dataset.to_flat()
    total_symbols = corpus.total_symbols

    hash_matcher = static_matcher_from_table(table, "hash")
    rolling_matcher = static_matcher_from_table(table, "rolling")

    baseline_tokens = compress_dataset(paths, table, hash_matcher)
    rolling_tokens = compress_paths_flat(corpus, table, rolling_matcher)
    identical = rolling_tokens == baseline_tokens

    # Symmetric inputs: each pipeline is timed on its natural prebuilt
    # representation (list of tuples for the seed loop, FlatCorpus for the
    # batch route); the one-off interning cost is reported separately.
    baseline_s = min_of(lambda: compress_dataset(paths, table, hash_matcher), args.rounds)
    flat_s = min_of(
        lambda: compress_paths_flat(corpus, table, rolling_matcher), args.rounds
    )
    intern_s = min_of(lambda: dataset.to_flat(), args.rounds)

    def probe_counters(run: Callable[[], object]) -> Dict[str, int]:
        with instrumented() as obs:
            run()
        counters = obs.registry.counters()
        return {
            "matcher.probes": counters.get("matcher.probes", 0),
            "matcher.hashed_vertices": counters.get("matcher.hashed_vertices", 0),
        }

    result = {
        "benchmark": "smoke_fig5_speed",
        "workload": args.workload,
        "size": args.size,
        "rounds": args.rounds,
        "python": platform.python_version(),
        "paths": len(paths),
        "symbols": total_symbols,
        "table_entries": len(table),
        "build_seconds": round(report.elapsed_seconds, 4),
        "intern_seconds": round(intern_s, 4),
        "identical_output": identical,
        "pipelines": {
            "seed_hash_loop": {
                "seconds": round(baseline_s, 4),
                "msym_per_s": round(total_symbols / baseline_s / 1e6, 3),
                "probes": probe_counters(
                    lambda: compress_dataset(paths, table, hash_matcher)
                ),
            },
            "flat_rolling_batch": {
                "seconds": round(flat_s, 4),
                "msym_per_s": round(total_symbols / flat_s / 1e6, 3),
                "probes": probe_counters(
                    lambda: compress_paths_flat(corpus, table, rolling_matcher)
                ),
            },
        },
        "speedup": round(baseline_s / flat_s, 3) if flat_s else None,
    }

    blob = json.dumps(result, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(blob + "\n")
    print(blob)
    print(f"\nsmoke: {result['speedup']}x flat-rolling over seed loop "
          f"(identical={identical}) -> {args.out}", file=sys.stderr)
    if not identical:
        print("smoke: OUTPUT MISMATCH — flat pipeline diverged", file=sys.stderr)
        return 1

    decode = bench_decode(table, baseline_tokens, paths, args.rounds)
    decode.update({"workload": args.workload, "size": args.size,
                   "python": platform.python_version()})
    blob = json.dumps(decode, indent=2, sort_keys=True)
    with open(args.decode_out, "w", encoding="utf-8") as fh:
        fh.write(blob + "\n")
    print(blob)
    print(f"smoke: {decode['speedup']}x flat-batch decode over seed loop "
          f"(identical={decode['identical_output']}) -> {args.decode_out}",
          file=sys.stderr)
    if not decode["identical_output"]:
        print("smoke: OUTPUT MISMATCH — decode routes diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
