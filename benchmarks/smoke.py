"""Tiny smoke benchmark — ``make bench-smoke``.

A fig5-style speed run small enough for CI: build one table on one
workload, then time the seed pipeline (per-path loop, flat hash matcher)
against the flat batch pipeline with the rolling backend, min-of-N each,
asserting byte-identical output.  Emits one JSON blob (``BENCH_smoke.json``
by default) so CI can archive a timing trajectory next to the test logs.

Timings here are *smoke* numbers: small inputs, shared runners — read them
for trajectory and order-of-magnitude, not for truth.  The real harness is
``pytest benchmarks/ --benchmark-only`` and ``python -m repro.bench``.

::

    PYTHONPATH=src python benchmarks/smoke.py --size tiny --out BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict


def min_of(run: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="tiny", choices=("tiny", "small", "medium"))
    parser.add_argument("--workload", default="alibaba")
    parser.add_argument("--rounds", type=int, default=3, help="report min-of-N")
    parser.add_argument("--out", default="BENCH_smoke.json")
    args = parser.parse_args(argv)

    from repro.core.builder import TableBuilder
    from repro.core.compressor import compress_dataset, compress_paths_flat
    from repro.core.config import OFFSConfig
    from repro.core.matcher import static_matcher_from_table
    from repro.obs import instrumented
    from repro.workloads.registry import make_dataset

    dataset = make_dataset(args.workload, args.size, seed=0)
    sample_exponent = {"tiny": 0, "small": 2, "medium": 4}[args.size]
    config = OFFSConfig(iterations=4, sample_exponent=sample_exponent)
    table, report = TableBuilder(config).build(dataset)

    paths = list(dataset)
    corpus = dataset.to_flat()
    total_symbols = corpus.total_symbols

    hash_matcher = static_matcher_from_table(table, "hash")
    rolling_matcher = static_matcher_from_table(table, "rolling")

    baseline_tokens = compress_dataset(paths, table, hash_matcher)
    rolling_tokens = compress_paths_flat(corpus, table, rolling_matcher)
    identical = rolling_tokens == baseline_tokens

    # Symmetric inputs: each pipeline is timed on its natural prebuilt
    # representation (list of tuples for the seed loop, FlatCorpus for the
    # batch route); the one-off interning cost is reported separately.
    baseline_s = min_of(lambda: compress_dataset(paths, table, hash_matcher), args.rounds)
    flat_s = min_of(
        lambda: compress_paths_flat(corpus, table, rolling_matcher), args.rounds
    )
    intern_s = min_of(lambda: dataset.to_flat(), args.rounds)

    def probe_counters(run: Callable[[], object]) -> Dict[str, int]:
        with instrumented() as obs:
            run()
        counters = obs.registry.counters()
        return {
            "matcher.probes": counters.get("matcher.probes", 0),
            "matcher.hashed_vertices": counters.get("matcher.hashed_vertices", 0),
        }

    result = {
        "benchmark": "smoke_fig5_speed",
        "workload": args.workload,
        "size": args.size,
        "rounds": args.rounds,
        "python": platform.python_version(),
        "paths": len(paths),
        "symbols": total_symbols,
        "table_entries": len(table),
        "build_seconds": round(report.elapsed_seconds, 4),
        "intern_seconds": round(intern_s, 4),
        "identical_output": identical,
        "pipelines": {
            "seed_hash_loop": {
                "seconds": round(baseline_s, 4),
                "msym_per_s": round(total_symbols / baseline_s / 1e6, 3),
                "probes": probe_counters(
                    lambda: compress_dataset(paths, table, hash_matcher)
                ),
            },
            "flat_rolling_batch": {
                "seconds": round(flat_s, 4),
                "msym_per_s": round(total_symbols / flat_s / 1e6, 3),
                "probes": probe_counters(
                    lambda: compress_paths_flat(corpus, table, rolling_matcher)
                ),
            },
        },
        "speedup": round(baseline_s / flat_s, 3) if flat_s else None,
    }

    blob = json.dumps(result, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(blob + "\n")
    print(blob)
    print(f"\nsmoke: {result['speedup']}x flat-rolling over seed loop "
          f"(identical={identical}) -> {args.out}", file=sys.stderr)
    if not identical:
        print("smoke: OUTPUT MISMATCH — flat pipeline diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
