"""Figure 6a — full-archive decompression speed per codec.

Paper shape: all DICT-based methods decompress at essentially the same
speed (they share Algorithm 1's ``O(|P|)`` expansion), competitive with
Dlz4 (OFFS ≈ 0.75× Dlz4's DS there).  One pytest-benchmark row per codec
plus the printed cross-dataset table.

Methodology: every row is timed as the *minimum over N rounds* (min-of-N
is the standard noise filter for wall-clock microbenchmarks — the minimum
is the run least perturbed by scheduler and allocator noise;
pytest-benchmark's ``min`` column is the number to read).  The flat rows
time the batch decode kernel against the per-path loop on the same
tokens, with the expansion cache warmed outside the timer so both sides
measure steady-state decode, not one-off cache construction.
"""

import pytest

from repro.bench.experiments import exp_fig6_decompression
from repro.bench.harness import CODEC_FACTORIES
from repro.core.compressor import decompress_path, decompress_paths_flat
from repro.core.flatcorpus import FlatCorpus
from repro.core.offs import OFFSCodec
from repro.workloads.registry import DATASET_NAMES, make_dataset

CODECS = ("OFFS", "OFFS*", "Dlz4", "RSS", "GFS")
ROUNDS = 3  # report min-of-3


def test_fig6a_decompression_table(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig6_decompression(DATASET_NAMES, config),
        rounds=ROUNDS, iterations=1,
    )
    report(
        "fig6a_decompression", rows, shape,
        note="All DICT methods share Algorithm 1: near-identical DS; "
             "OFFS competitive with Dlz4 (paper: ~0.75x).",
    )
    assert shape["offs_ds_avg"] > 0
    # DICT methods cluster tightly (within 40% of the fastest).
    assert shape["dict_ds_spread"] < 0.4


@pytest.mark.parametrize("codec_name", CODECS)
def test_fig6a_decompression_speed(benchmark, config, codec_name):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = CODEC_FACTORIES[codec_name](config)
    codec.fit(dataset)
    tokens = codec.compress_dataset(dataset)

    def decompress_all():
        for token in tokens:
            codec.decompress_path(token)

    benchmark.pedantic(decompress_all, rounds=ROUNDS, iterations=1)


@pytest.fixture(scope="module")
def offs_tokens(config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = OFFSCodec(config.offs_config()).fit(dataset)
    tokens = codec.compress_dataset(dataset)
    table = codec.table
    table.expansions()  # warm the cache: rows below time steady-state decode
    return tokens, FlatCorpus.from_paths(tokens), table


def test_fig6a_perpath_loop_decode(benchmark, offs_tokens):
    tokens, _, table = offs_tokens

    def decompress_all():
        return [decompress_path(t, table) for t in tokens]

    benchmark.pedantic(decompress_all, rounds=ROUNDS, iterations=1)


def test_fig6a_flat_batch_decode(benchmark, offs_tokens):
    _, corpus, table = offs_tokens
    benchmark.pedantic(
        lambda: decompress_paths_flat(corpus, table, as_corpus=True),
        rounds=ROUNDS, iterations=1,
    )


def test_fig6a_flat_batch_identical_to_loop(offs_tokens):
    tokens, corpus, table = offs_tokens
    assert decompress_paths_flat(corpus, table) == [
        decompress_path(t, table) for t in tokens
    ]
