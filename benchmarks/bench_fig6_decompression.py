"""Figure 6a — full-archive decompression speed per codec.

Paper shape: all DICT-based methods decompress at essentially the same
speed (they share Algorithm 1's ``O(|P|)`` expansion), competitive with
Dlz4 (OFFS ≈ 0.75× Dlz4's DS there).  One pytest-benchmark row per codec
plus the printed cross-dataset table.
"""

import pytest

from repro.bench.experiments import exp_fig6_decompression
from repro.bench.harness import CODEC_FACTORIES
from repro.workloads.registry import DATASET_NAMES, make_dataset

CODECS = ("OFFS", "OFFS*", "Dlz4", "RSS", "GFS")


def test_fig6a_decompression_table(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_fig6_decompression(DATASET_NAMES, config),
        rounds=1, iterations=1,
    )
    report(
        "fig6a_decompression", rows, shape,
        note="All DICT methods share Algorithm 1: near-identical DS; "
             "OFFS competitive with Dlz4 (paper: ~0.75x).",
    )
    assert shape["offs_ds_avg"] > 0
    # DICT methods cluster tightly (within 40% of the fastest).
    assert shape["dict_ds_spread"] < 0.4


@pytest.mark.parametrize("codec_name", CODECS)
def test_fig6a_decompression_speed(benchmark, config, codec_name):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = CODEC_FACTORIES[codec_name](config)
    codec.fit(dataset)
    tokens = codec.compress_dataset(dataset)

    def decompress_all():
        for token in tokens:
            codec.decompress_path(token)

    benchmark.pedantic(decompress_all, rounds=3, iterations=1)
