"""Shared fixtures and reporting for the paper-reproduction benchmarks.

Every ``bench_*.py`` regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4).  Experiment tables are printed straight to
the terminal (bypassing capture) *and* written under ``benchmarks/results/``
so a ``pytest benchmarks/ --benchmark-only | tee`` run leaves both the
pytest-benchmark timing tables and the paper-shaped experiment tables on
record.

Scale: the ``medium`` presets with a scaled sample exponent (see
``repro.bench.harness.BenchConfig``) — large enough for the paper's
λ = nodes/500 capacity rule to bind as designed, small enough for pure
Python.  Set ``REPRO_BENCH_SIZE=small`` for a quick pass.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.charts import chart_from_rows
from repro.analysis.stats import format_table
from repro.bench.harness import BenchConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_config() -> BenchConfig:
    """The campaign configuration for this run (env-overridable)."""
    size = os.environ.get("REPRO_BENCH_SIZE", "medium")
    sample_exponent = {"tiny": 0, "small": 2, "medium": 4}.get(size, 4)
    return BenchConfig(size=size, sample_exponent=sample_exponent)


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    return bench_config()


@pytest.fixture(scope="session")
def strict(config) -> bool:
    """Paper-shape margins are asserted strictly only at the intended scale.

    Below ``medium``, λ = nodes/500 degenerates toward its floor and hot
    patterns repeat too rarely for the full margins; quick runs then check
    orderings rather than magnitudes.
    """
    return config.size == "medium"


@pytest.fixture(scope="session")
def report():
    """Emit an experiment table to stdout and benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(name: str, rows, shape, note: str = "", chart=None) -> None:
        text = format_table(rows, title=f"== {name} ==")
        if chart:
            # chart = (x_column, {series: column}) — render the figure's
            # curve shape right under its table.
            x_column, y_columns = chart
            text += "\n" + chart_from_rows(
                rows, x_column, y_columns, width=54, height=12
            )
        if shape:
            shaped = ", ".join(f"{k}={v:.3f}" for k, v in shape.items())
            text += f"\n   shape: {shaped}"
        if note:
            text += f"\n   paper: {note}"
        # Tables always land in benchmarks/results/; they also print to
        # stdout, which reaches the terminal when pytest runs with -s
        # (pytest's default fd-level capture otherwise swallows passing
        # tests' output — run `pytest benchmarks/ --benchmark-only -s`
        # to watch the reproduced artifacts scroll by).
        print("\n" + text, flush=True)
        with open(RESULTS_DIR / f"{name}.txt", "w", encoding="utf-8") as fh:
            fh.write(text + "\n")

    return emit
