"""Ablation A1 — matcher backends: flat hash, two-level hash, trie, rolling.

The backends (Algorithm 6, Algorithm 7, the §IV-D trie, and the
rolling-hash scheme of :mod:`repro.core.rollhash`) must produce identical
tables and tokens; what differs is probe cost.  The printed table records
CR (identical) and build/compress timings; the pytest-benchmark rows time
compression per backend.
"""

import pytest

from repro.bench.experiments import exp_ablation_matchers
from repro.core.compressor import compress_dataset
from repro.core.matcher import static_matcher_from_table
from repro.core.offs import OFFSCodec
from repro.workloads.registry import make_dataset

BACKENDS = ("hash", "multilevel", "trie", "rolling")


def test_a1_matcher_backend_table(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_ablation_matchers("alibaba", config),
        rounds=1, iterations=1,
    )
    report(
        "ablation_a1_matchers", rows, shape,
        note="Identical results by contract; Lemma 3 / the IV-D trie only "
             "change probe cost.",
    )
    assert shape["results_identical"] == 1.0


@pytest.fixture(scope="module")
def compression_setup(config):
    dataset = make_dataset("alibaba", config.size, config.seed)
    codec = OFFSCodec(config.offs_config()).fit(dataset)
    return dataset, codec.table


@pytest.mark.parametrize("backend", BACKENDS)
def test_a1_compression_probe_cost(benchmark, compression_setup, backend):
    dataset, table = compression_setup
    matcher = static_matcher_from_table(table, backend)
    paths = list(dataset)
    benchmark.pedantic(
        lambda: compress_dataset(paths, table, matcher),
        rounds=3, iterations=1,
    )
