"""Ablation A2 — practical vs gross weighted frequency (Section IV-A).

The paper's core argument, isolated: on a collision-heavy workload with a
tight table capacity, the gross measure (GFS) fills the table with
overlapping fragments and loses to the *random* baseline, while practical
frequency (OFFS) wins decisively.
"""

from repro.bench.experiments import exp_ablation_measure


def test_a2_practical_vs_gross_frequency(benchmark, config, report):
    rows, shape = benchmark.pedantic(
        lambda: exp_ablation_measure(config),
        rounds=1, iterations=1,
    )
    report(
        "ablation_a2_measure", rows, shape,
        note="Paper Fig 5a: GFS average CR below RSS; OFFS ~1.5x naive DICTs "
             "(far larger under tight capacity).",
    )
    # OFFS beats GFS decisively where collisions dominate...
    assert shape["offs_over_gfs"] > 1.5
    # ...and gross frequency cannot even beat random selection.
    assert shape["gfs_minus_rss"] <= 0.1
