"""Reordering benchmark — ``make bench-reorder``.

Prices every vertex-ordering strategy on every workload: a (workload x
strategy) grid of the Section VI-B metrics — CR under the byte-accurate
varint model (charging for the persisted order table), CS / DS / PDS —
plus the headline varint-bytes-saved number, with each cell round-trip
verified through a mapped v2 archive *before* any number is reported.

Deterministic keys (``compression_ratio``, ``compressed_bytes``,
``varint_bytes_saved``, ``verified``) gate in CI via
``tools/bench_compare.py``; the ``*_mbps`` / ``*_seconds`` keys are
machine numbers read for trajectory only.

::

    PYTHONPATH=src python benchmarks/bench_reorder.py --size tiny --out BENCH_reorder.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import tempfile
import time
from typing import Callable, Dict


def min_of(run: Callable[[], object], rounds: int) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_cell(dataset, strategy: str, sample_exponent: int, rounds: int, seed: int):
    """One (workload, strategy) cell: fit, compress, verify, time."""
    from repro.analysis.sizing import dataset_raw_bytes
    from repro.core.compressor import compress_paths_flat
    from repro.core.config import OFFSConfig
    from repro.core.mapped import MappedPathStore
    from repro.core.matcher import static_matcher_from_table
    from repro.core.offs import OFFSCodec
    from repro.core.serialize import dumps_store_v2
    from repro.core.store import CompressedPathStore
    from repro.paths.encoding import VarintEncoding
    from repro.paths.reorder import varint_bytes_saved

    paths = [tuple(p) for p in dataset]
    corpus = dataset.to_flat()
    raw_bytes = dataset_raw_bytes(paths)
    config = OFFSConfig(sample_exponent=sample_exponent, reorder=strategy)

    started = time.perf_counter()
    codec = OFFSCodec(config).fit(corpus)
    fit_seconds = time.perf_counter() - started
    table, order = codec.table, codec.order

    work_corpus = corpus if order is None else order.transform_corpus(corpus)
    matcher = static_matcher_from_table(table, config.matcher)
    compress_seconds = min_of(
        lambda: compress_paths_flat(work_corpus, table, matcher), rounds
    )
    tokens = compress_paths_flat(work_corpus, table, matcher)
    store = CompressedPathStore.from_tokens(table, tokens, order=order)

    blob = dumps_store_v2(store)
    varint = VarintEncoding()
    compressed_bytes = store.compressed_size_bytes(varint)
    saved = varint_bytes_saved(order, paths)

    # Round-trip through the mapped reader: full decode AND a slice, both
    # in original ids.  A cell that fails verification reports nothing.
    fd, v2_path = tempfile.mkstemp(suffix=".rpc2")
    os.close(fd)
    try:
        with open(v2_path, "wb") as fh:
            fh.write(blob)
        with MappedPathStore.open(v2_path) as mapped:
            verified = mapped.retrieve_all() == paths
            probe = min(3, len(paths) - 1)
            verified = verified and (
                mapped.retrieve_slice(probe, 0, 2) == paths[probe][0:2]
            )
            decompress_seconds = min_of(mapped.retrieve_all, rounds)
            count = max(1, min(len(paths) // 10, 256))
            ids = sorted(random.Random(seed).sample(range(len(paths)), count))
            sample_bytes = dataset_raw_bytes([paths[i] for i in ids])
            pds_seconds = min_of(
                lambda: [mapped.retrieve(i) for i in ids], rounds
            )
    finally:
        os.unlink(v2_path)

    _mb = 1_000_000.0
    compress_total = fit_seconds + compress_seconds
    return {
        "verified": verified,
        "compressed_bytes": compressed_bytes,
        "v2_file_bytes": len(blob),
        "order_bytes": order.size_bytes(varint) if order is not None else 0,
        "order_vertices": len(order) if order is not None else 0,
        "varint_bytes_saved": saved,
        "table_entries": len(table),
        "compression_ratio": round(raw_bytes / compressed_bytes, 4),
        "compression_speed_mbps": round(raw_bytes / _mb / compress_total, 3),
        "decompression_speed_mbps": round(raw_bytes / _mb / decompress_seconds, 3),
        "partial_decompression_speed_mbps": round(
            sample_bytes / _mb / pds_seconds, 3
        ),
        "fit_seconds": round(fit_seconds, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="tiny", choices=("tiny", "small", "medium"))
    parser.add_argument("--workloads", nargs="+", default=["alibaba", "rome"])
    parser.add_argument("--rounds", type=int, default=3, help="report min-of-N")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_reorder.json")
    args = parser.parse_args(argv)

    from repro.paths.reorder import ORDER_STRATEGIES
    from repro.workloads.registry import make_dataset

    sample_exponent = {"tiny": 0, "small": 2, "medium": 4}[args.size]
    workloads: Dict[str, Dict[str, object]] = {}
    all_verified = True
    total_saved = 0
    winners = {}
    for workload in args.workloads:
        dataset = make_dataset(workload, args.size, seed=args.seed)
        cells: Dict[str, Dict[str, object]] = {}
        for strategy in ORDER_STRATEGIES:
            cell = bench_cell(
                dataset, strategy, sample_exponent, args.rounds, args.seed
            )
            cells[strategy] = cell
            all_verified = all_verified and bool(cell["verified"])
            total_saved += int(cell["varint_bytes_saved"])
            print(
                f"{workload}/{strategy}: CR={cell['compression_ratio']} "
                f"CS={cell['compression_speed_mbps']}MB/s "
                f"saved={cell['varint_bytes_saved']}B "
                f"verified={cell['verified']}",
                file=sys.stderr,
            )
        identity_cr = float(cells["identity"]["compression_ratio"])
        best = max(
            cells, key=lambda s: (float(cells[s]["compression_ratio"]), s != "identity")
        )
        winners[workload] = best
        workloads[workload] = {
            "paths": len(dataset),
            "strategies": cells,
            "best_strategy": best,
            "best_cr_delta": round(
                float(cells[best]["compression_ratio"]) - identity_cr, 4
            ),
        }

    result = {
        "benchmark": "reorder",
        "size": args.size,
        "rounds": args.rounds,
        "seed": args.seed,
        "python": platform.python_version(),
        "workloads": workloads,
        "headline": {
            "all_verified": all_verified,
            "total_varint_bytes_saved": total_saved,
            "any_strategy_beats_identity": any(
                w != "identity" for w in winners.values()
            ),
        },
    }
    blob = json.dumps(result, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(blob + "\n")
    print(blob)
    print(
        f"\nreorder: winners={winners} saved={total_saved}B "
        f"(all_verified={all_verified}) -> {args.out}",
        file=sys.stderr,
    )
    return 0 if all_verified else 1


if __name__ == "__main__":
    sys.exit(main())
